"""Parser for the textual IR produced by :mod:`repro.ir.printer`.

This gives the toolchain a persistent on-disk form: instrumented device
modules can be dumped, inspected and re-loaded, the way one inspects
LLVM ``.ll`` files around ``opt``. The grammar is exactly the printer's
output language, parsed with a small hand-written recursive scanner.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRParseError
from repro.ir.debuginfo import DebugLoc
from repro.ir.instructions import (
    Alloca,
    AtomicOp,
    AtomicRMW,
    BinOp,
    Br,
    CacheOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import AddressSpace, IntType, Type, BOOL, VOID, parse_type
from repro.ir.values import Constant, GlobalString, GlobalVariable, Value

_DBG_RE = re.compile(r'\s*!dbg\s+"([^"]*)":(\d+):(\d+)\s*$')
_HEADER_RE = re.compile(
    r"^(define|declare)\s+(\w+)\s+(.+?)\s+@([\w.$-]+)\((.*)\)\s*(\{)?\s*$"
)
_STRING_RE = re.compile(r'^@([\w.$-]+)\s*=\s*constant\s+c"(.*)"\s*$')
_GLOBAL_RE = re.compile(
    r"^@([\w.$-]+)\s*=\s*global\s+(.+?),\s*count\s+(\d+),\s*addrspace\s+(\d+)"
    r"(?:\s+init\s+\[(.*)\])?\s*$"
)
_OPCODES = {op.value for op in Opcode}
_CASTS = {k.value for k in CastKind}


def _unescape(text: str) -> str:
    return text.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


class _FunctionParser:
    """Parses one function body; resolves names lazily via placeholders."""

    def __init__(self, module: Module, fn: Function):
        self.module = module
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        # phi operands may reference later definitions; resolved in finish()
        self._phi_fixups: List[Tuple[Phi, List[Tuple[str, str, int]]]] = []

    def get_block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = BasicBlock(name, self.fn)
            self.blocks[name] = block
        return self.blocks[name]

    def operand(self, type_: Type, token: str, lineno: int) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            if name not in self.values:
                raise IRParseError(f"use of undefined value %{name}", lineno)
            return self.values[name]
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.strings:
                return self.module.strings[name]
            if name in self.module.globals:
                return self.module.globals[name]
            raise IRParseError(f"use of unknown global @{name}", lineno)
        if token == "true":
            return Constant(BOOL, True)
        if token == "false":
            return Constant(BOOL, False)
        if token == "null":
            return Constant(type_, 0)
        try:
            if type_.is_float:
                return Constant(type_, float(token))
            return Constant(type_, int(token))
        except ValueError:
            raise IRParseError(f"bad operand {token!r}", lineno) from None

    def define(self, name: str, value: Value, lineno: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", lineno)
        value.name = name
        self.values[name] = value
        self.fn._taken_names.add(name)

    def finish(self) -> None:
        """Resolve deferred phi operands (loop back edges)."""
        for phi, arms in self._phi_fixups:
            for value_token, block_name, lineno in arms:
                value = self.operand(phi.type, value_token, lineno)
                phi.add_incoming(value, self.get_block(block_name))


def _split_args(text: str) -> List[str]:
    """Split a comma-separated argument list, respecting brackets."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _typed_operand(fp: _FunctionParser, text: str, lineno: int) -> Value:
    text = text.strip()
    # "<type> <ref>"
    idx = text.rfind(" ")
    if idx < 0:
        raise IRParseError(f"expected 'type value', got {text!r}", lineno)
    type_ = parse_type(text[:idx])
    return fp.operand(type_, text[idx + 1:], lineno)


def _parse_instruction(
    fp: _FunctionParser, line: str, lineno: int
) -> Instruction:
    loc: Optional[DebugLoc] = None
    m = _DBG_RE.search(line)
    if m:
        loc = DebugLoc(m.group(1), int(m.group(2)), int(m.group(3)))
        line = line[: m.start()]
    line = line.strip()

    result_name = None
    if line.startswith("%"):
        eq = line.index("=")
        result_name = line[1:eq].strip()
        line = line[eq + 1:].strip()

    inst = _parse_rhs(fp, line, lineno, result_name)
    inst.debug_loc = loc
    if result_name is not None and not inst.type.is_void:
        fp.define(result_name, inst, lineno)
    return inst


def _parse_rhs(
    fp: _FunctionParser, line: str, lineno: int, result_name: Optional[str]
) -> Instruction:
    head, _, rest = line.partition(" ")
    rest = rest.strip()

    if head == "alloca":
        m = re.match(r"^(.+?),\s*count\s+(\d+)$", rest)
        if not m:
            raise IRParseError(f"bad alloca: {line!r}", lineno)
        return Alloca(parse_type(m.group(1)), int(m.group(2)), result_name or "")

    if head.startswith("load"):
        cache = _cache_op(head, "load", lineno)
        parts = _split_args(rest)
        if len(parts) != 2:
            raise IRParseError(f"bad load: {line!r}", lineno)
        pointer = _typed_operand(fp, parts[1], lineno)
        return Load(pointer, result_name or "", cache)

    if head.startswith("store"):
        cache = _cache_op(head, "store", lineno)
        parts = _split_args(rest)
        if len(parts) != 2:
            raise IRParseError(f"bad store: {line!r}", lineno)
        value = _typed_operand(fp, parts[0], lineno)
        pointer = _typed_operand(fp, parts[1], lineno)
        return Store(value, pointer, cache)

    if head == "getelementptr":
        parts = _split_args(rest)
        base = _typed_operand(fp, parts[0], lineno)
        index = _typed_operand(fp, parts[1], lineno)
        return GetElementPtr(base, index, result_name or "")

    if head in _OPCODES:
        m = re.match(r"^(.+?)\s+(\S+),\s*(\S+)$", rest)
        if not m:
            raise IRParseError(f"bad binop: {line!r}", lineno)
        type_ = parse_type(m.group(1))
        lhs = fp.operand(type_, m.group(2), lineno)
        rhs = fp.operand(type_, m.group(3), lineno)
        return BinOp(Opcode(head), lhs, rhs, result_name or "")

    if head in ("icmp", "fcmp"):
        m = re.match(r"^(\w+)\s+(.+?)\s+(\S+),\s*(\S+)$", rest)
        if not m:
            raise IRParseError(f"bad {head}: {line!r}", lineno)
        pred = CmpPred(m.group(1))
        type_ = parse_type(m.group(2))
        lhs = fp.operand(type_, m.group(3), lineno)
        rhs = fp.operand(type_, m.group(4), lineno)
        cls = ICmp if head == "icmp" else FCmp
        return cls(pred, lhs, rhs, result_name or "")

    if head in _CASTS:
        m = re.match(r"^(.+?)\s+(\S+)\s+to\s+(.+)$", rest)
        if not m:
            raise IRParseError(f"bad cast: {line!r}", lineno)
        from_type = parse_type(m.group(1))
        value = fp.operand(from_type, m.group(2), lineno)
        return Cast(CastKind(head), value, parse_type(m.group(3)), result_name or "")

    if head == "select":
        parts = _split_args(rest)
        cond = _typed_operand(fp, parts[0], lineno)
        iftrue = _typed_operand(fp, parts[1], lineno)
        iffalse = _typed_operand(fp, parts[2], lineno)
        return Select(cond, iftrue, iffalse, result_name or "")

    if head == "atomicrmw":
        m = re.match(r"^(\w+)\s+(.*)$", rest)
        op = AtomicOp(m.group(1))
        parts = _split_args(m.group(2))
        pointer = _typed_operand(fp, parts[0], lineno)
        value = _typed_operand(fp, parts[1], lineno)
        return AtomicRMW(op, pointer, value, result_name or "")

    if head == "call":
        m = re.match(r"^(.+?)\s+@([\w.$-]+)\((.*)\)$", rest)
        if not m:
            raise IRParseError(f"bad call: {line!r}", lineno)
        callee = fp.module.get_function(m.group(2))
        args = [
            _typed_operand(fp, part, lineno)
            for part in _split_args(m.group(3))
        ]
        return Call(callee, args, result_name or "")

    if head == "br":
        if rest.startswith("label"):
            target = fp.get_block(rest.split("%")[1].strip())
            return Br(target)
        m = re.match(r"^i1\s+(\S+),\s*label\s+%(\S+),\s*label\s+%(\S+)$", rest)
        if not m:
            raise IRParseError(f"bad br: {line!r}", lineno)
        cond = fp.operand(BOOL, m.group(1), lineno)
        return CondBr(cond, fp.get_block(m.group(2)), fp.get_block(m.group(3)))

    if head == "ret":
        if rest == "void":
            return Ret(None)
        return Ret(_typed_operand(fp, rest, lineno))

    if head == "phi":
        m = re.match(r"^(.+?)\s+(\[.*\])$", rest)
        if not m:
            raise IRParseError(f"bad phi: {line!r}", lineno)
        phi = Phi(parse_type(m.group(1)), result_name or "")
        arms = []
        for pair in _split_args(m.group(2)):
            pm = re.match(r"^\[\s*(\S+),\s*%(\S+)\s*\]$", pair.strip())
            if not pm:
                raise IRParseError(f"bad phi arm: {pair!r}", lineno)
            arms.append((pm.group(1), pm.group(2), lineno))
        # Phi operands may reference values defined later (loop back
        # edges); resolve them after the whole body has been parsed.
        fp._phi_fixups.append((phi, arms))
        return phi

    raise IRParseError(f"unknown instruction: {line!r}", lineno)


def _cache_op(head: str, base: str, lineno: int) -> CacheOp:
    if head == base:
        return CacheOp.CACHE_ALL
    suffix = head[len(base):]
    if not suffix.startswith("."):
        raise IRParseError(f"bad cache operator in {head!r}", lineno)
    return CacheOp(suffix[1:])


def parse_module(text: str) -> Module:
    """Parse a module from its printed form."""
    lines = text.splitlines()
    module: Optional[Module] = None
    i = 0
    pending_bodies: List[Tuple[Function, int, int]] = []  # (fn, start, end)

    # First line(s): module header.
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if line.startswith("; module "):
            module = Module(line[len("; module "):].strip())
            continue
        if line.startswith("target"):
            if module is None:
                raise IRParseError("target before module header", i)
            module.target = line.split('"')[1]
            continue
        i -= 1
        break
    if module is None:
        module = Module("parsed")

    # Scan top-level entities; collect function bodies for a second pass so
    # calls can reference functions defined later.
    while i < len(lines):
        line = lines[i].strip()
        if not line or line.startswith(";"):
            i += 1
            continue
        m = _STRING_RE.match(line)
        if m:
            s = GlobalString(m.group(1), _unescape(m.group(2)))
            module.strings[s.name] = s
            i += 1
            continue
        m = _GLOBAL_RE.match(line)
        if m:
            init = None
            if m.group(5) is not None:
                element = parse_type(m.group(2))
                conv = float if element.is_float else int
                init = [conv(tok) for tok in _split_args(m.group(5))]
            var = GlobalVariable(
                m.group(1),
                parse_type(m.group(2)),
                int(m.group(3)),
                AddressSpace(int(m.group(4))),
                init,
            )
            module.globals[var.name] = var
            i += 1
            continue
        m = _HEADER_RE.match(line)
        if m:
            is_def = m.group(1) == "define"
            kind, ret_text, name, params_text = (
                m.group(2),
                m.group(3),
                m.group(4),
                m.group(5),
            )
            params = []
            for p in _split_args(params_text):
                idx = p.rfind("%")
                if idx < 0:
                    raise IRParseError(f"bad parameter {p!r}", i + 1)
                params.append((parse_type(p[:idx]), p[idx + 1:].strip()))
            fn = module.add_function(name, parse_type(ret_text), params, kind)
            if is_def:
                start = i + 1
                depth = 1
                j = start
                while j < len(lines) and depth:
                    if lines[j].strip() == "}":
                        depth -= 1
                    j += 1
                pending_bodies.append((fn, start, j - 1))
                i = j
            else:
                i += 1
            continue
        raise IRParseError(f"unexpected top-level line: {line!r}", i + 1)

    for fn, start, end in pending_bodies:
        _parse_body(module, fn, lines, start, end)
    return module


def _parse_body(
    module: Module, fn: Function, lines: List[str], start: int, end: int
) -> None:
    fp = _FunctionParser(module, fn)
    current: Optional[BasicBlock] = None
    for lineno in range(start, end):
        raw = lines[lineno]
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.endswith(":") and not line.startswith("%"):
            current = fp.get_block(line[:-1])
            if current not in fn.blocks:
                fn.blocks.append(current)
                fn._taken_names.add(current.name)
            continue
        if current is None:
            raise IRParseError("instruction outside any block", lineno + 1)
        inst = _parse_instruction(fp, line, lineno + 1)
        inst.parent = current
        current.instructions.append(inst)
    fp.finish()
