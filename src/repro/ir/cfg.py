"""Control-flow-graph utilities.

The SIMT engine needs *immediate post-dominators* to place reconvergence
points for divergent branches (the classic stack-based reconvergence
model), and the passes need predecessor maps and reverse-post-order
walks. Everything here is computed from the block successor lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import IRError
from repro.ir.instructions import Ret
from repro.ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> Tuple[BasicBlock, ...]:
    return block.successors()


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reverse_post_order(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order from the entry (unreachable excluded)."""
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(id(block))
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    return set(reverse_post_order(fn))


def _dominators_generic(
    nodes: List[BasicBlock],
    entry: BasicBlock,
    preds: Dict[BasicBlock, List[BasicBlock]],
) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Cooper-Harvey-Kennedy iterative idom computation over any graph."""
    index = {id(b): i for i, b in enumerate(nodes)}
    idom: Dict[int, Optional[BasicBlock]] = {id(b): None for b in nodes}
    idom[id(entry)] = entry

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in nodes:
            if block is entry:
                continue
            new_idom: Optional[BasicBlock] = None
            for pred in preds.get(block, ()):  # only processed preds count
                if id(pred) in idom and idom[id(pred)] is not None:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
            if new_idom is not None and idom[id(block)] is not new_idom:
                idom[id(block)] = new_idom
                changed = True
    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in nodes:
        d = idom[id(block)]
        result[block] = None if block is entry else d
    return result


def immediate_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    nodes = reverse_post_order(fn)
    preds = predecessor_map(fn)
    return _dominators_generic(nodes, fn.entry, preds)


class _VirtualExit(BasicBlock):
    """A synthetic sink joining every ``ret`` block (for post-dominators)."""

    def __init__(self):
        super().__init__("<virtual-exit>", None)


def immediate_post_dominators(
    fn: Function,
) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """ipostdom for every reachable block.

    Blocks whose only path forward is an infinite loop post-dominate into
    the virtual exit's frontier and map to ``None``; the SIMT engine then
    reconverges such branches at function return.
    """
    blocks = reverse_post_order(fn)
    exit_node = _VirtualExit()

    # In the reverse graph an edge succ -> block exists for every CFG edge
    # block -> succ, plus exit -> retblock for every ret block; therefore a
    # node's reverse-graph *predecessors* are its CFG successors (and the
    # virtual exit for ret blocks).
    rev_preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in blocks}
    rev_preds[exit_node] = []
    for block in blocks:
        for succ in block.successors():
            rev_preds[block].append(succ)
        term = block.terminator
        if term is None or isinstance(term, Ret):
            rev_preds[block].append(exit_node)

    # Post-order of the reverse graph starting at exit.
    seen: Set[int] = {id(exit_node)}
    order: List[BasicBlock] = []
    # Reverse-graph successors of a node are its CFG predecessors (+ exit
    # edges); easiest to do a DFS over edges succ->pred built explicitly.
    cfg_preds = predecessor_map(fn)
    rev_succ: Dict[int, List[BasicBlock]] = {id(exit_node): []}
    for block in blocks:
        rev_succ[id(block)] = list(cfg_preds.get(block, ()))
    for block in blocks:
        term = block.terminator
        if term is None or isinstance(term, Ret):
            rev_succ[id(exit_node)].append(block)

    stack = [(exit_node, iter(rev_succ[id(exit_node)]))]
    while stack:
        current, it = stack[-1]
        advanced = False
        for nxt in it:
            if id(nxt) not in seen:
                seen.add(id(nxt))
                stack.append((nxt, iter(rev_succ[id(nxt)])))
                advanced = True
                break
        if not advanced:
            order.append(current)
            stack.pop()
    order.reverse()  # reverse post-order of reverse graph

    idom = _dominators_generic(order, exit_node, rev_preds)
    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in blocks:
        d = idom.get(block)
        result[block] = None if d is exit_node or d is None else d
    return result
