"""Tests for the kernel DSL compiler: semantics via execution, plus
structural and error-path checks."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.frontend import (
    compile_kernels,
    device,
    f32,
    i32,
    kernel,
    ptr_f32,
    ptr_i32,
)
from repro.gpu import Device, KEPLER_K40C
from repro.ir import print_module, verify_module
from repro.ir.types import AddressSpace


def _run_scalar_kernel(k, out_count, args, grid=1, block=32, dtype=np.int32):
    module = compile_kernels([k], k.name)
    dev = Device(KEPLER_K40C)
    img = dev.load_module(module)
    out = dev.malloc(int(np.dtype(dtype).itemsize) * out_count)
    dev.launch(img, k.name, grid, block, [out] + list(args))
    return dev.memcpy_dtoh(out, dtype, out_count)


# --- arithmetic / operators ---------------------------------------------------
@kernel
def k_int_ops(out: ptr_i32, a: i32, b: i32):
    t = tid_x
    if t == 0:
        out[0] = a + b
        out[1] = a - b
        out[2] = a * b
        out[3] = a // b
        out[4] = a % b
        out[5] = a & b
        out[6] = a | b
        out[7] = a ^ b
        out[8] = a << 2
        out[9] = a >> 1
        out[10] = min(a, b)
        out[11] = max(a, b)
        out[12] = -a
        out[13] = ~a
        out[14] = 1 if a > b else 2


def test_integer_operators():
    out = _run_scalar_kernel(k_int_ops, 15, [29, 5])
    a, b = 29, 5
    expected = [a + b, a - b, a * b, a // b, a % b, a & b, a | b, a ^ b,
                a << 2, a >> 1, min(a, b), max(a, b), -a, ~a, 1]
    assert list(out) == expected


@kernel
def k_float_ops(out: ptr_f32, a: f32, b: f32):
    t = tid_x
    if t == 0:
        out[0] = a + b
        out[1] = a - b
        out[2] = a * b
        out[3] = a / b
        out[4] = sqrtf(a)
        out[5] = fabsf(0.0 - a)
        out[6] = fminf(a, b)
        out[7] = fmaxf(a, b)
        out[8] = expf(b)
        out[9] = logf(a)
        out[10] = powf(a, 2.0)
        out[11] = floorf(a / b)
        out[12] = float(int(a))


def test_float_operators():
    a, b = 7.5, 2.0
    out = _run_scalar_kernel(k_float_ops, 13, [a, b], dtype=np.float32)
    expected = [a + b, a - b, a * b, a / b, np.sqrt(a), a, min(a, b),
                max(a, b), np.exp(b), np.log(a), a * a, np.floor(a / b),
                float(int(a))]
    assert np.allclose(out, np.array(expected, dtype=np.float32), rtol=1e-6)


@kernel
def k_mixed_promotion(out: ptr_f32, n: i32):
    t = tid_x
    if t == 0:
        out[0] = n + 0.5          # int + float -> float
        out[1] = n / 2            # true division promotes
        out[2] = float(n) * 2.0


def test_arithmetic_promotion():
    out = _run_scalar_kernel(k_mixed_promotion, 3, [7], dtype=np.float32)
    assert np.allclose(out, [7.5, 3.5, 14.0])


# --- control flow ----------------------------------------------------------------
@kernel
def k_control(out: ptr_i32, n: i32):
    t = tid_x
    if t == 0:
        total = 0
        for i in range(n):
            if i == 2:
                continue
            if i == 7:
                break
            total += i
        out[0] = total
        j = 0
        acc = 0
        while True:
            acc += j
            j += 1
            if j >= 5:
                break
        out[1] = acc
        down = 0
        for i in range(10, 0, -2):
            down += i
        out[2] = down
        out[3] = 1 if (n > 3 and n < 100) else 0
        out[4] = 1 if (n < 3 or not (n < 100)) else 0


def test_control_flow():
    out = _run_scalar_kernel(k_control, 5, [10])
    assert list(out) == [
        0 + 1 + 3 + 4 + 5 + 6,  # skip 2, break at 7
        0 + 1 + 2 + 3 + 4,
        10 + 8 + 6 + 4 + 2,
        1,
        0,
    ]


# --- device functions ---------------------------------------------------------------
@device
def tri(n: i32) -> i32:
    total = 0
    for i in range(n + 1):
        total += i
    return total


@kernel
def k_call(out: ptr_i32, n: i32):
    t = tid_x
    out[t] = tri(t % (n + 1))


def test_device_function_calls():
    out = _run_scalar_kernel(k_call, 32, [5])
    expected = [sum(range((t % 6) + 1)) for t in range(32)]
    assert list(out) == expected


# --- structure of generated IR ---------------------------------------------------------
class TestGeneratedIR:
    def test_module_verifies(self, fresh_module):
        verify_module(fresh_module)

    def test_debug_locations_present(self, fresh_module):
        fn = fresh_module.get_function("saxpy")
        locs = [i.debug_loc for i in fn.instructions() if i.debug_loc]
        assert locs, "saxpy has no debug info"
        assert all(loc.filename == "conftest.py" for loc in locs)
        assert all(loc.line > 0 for loc in locs)

    def test_shared_arrays_become_shared_globals(self, fresh_module):
        tile = fresh_module.globals["block_reduce.tile"]
        assert tile.addrspace == AddressSpace.SHARED
        assert tile.count == 64

    def test_kernel_kinds(self, fresh_module):
        assert fresh_module.get_function("saxpy").kind == "kernel"
        assert fresh_module.get_function("clampf").kind == "device"


# --- rejection paths ------------------------------------------------------------------
def test_missing_annotation_rejected():
    def bad(x, n: i32):  # pragma: no cover - never executed
        pass

    with pytest.raises(FrontendError, match="annotation"):
        compile_kernels([kernel(bad)], "bad")


def test_unknown_name_rejected():
    def bad(out: ptr_i32):  # pragma: no cover
        out[0] = undefined_thing  # noqa: F821

    with pytest.raises(FrontendError, match="unknown name"):
        compile_kernels([kernel(bad)], "bad")


def test_kernel_cannot_return_value():
    def bad(out: ptr_i32):  # pragma: no cover
        return 4

    with pytest.raises(FrontendError):
        compile_kernels([kernel(bad)], "bad")


def test_chained_assignment_rejected():
    def bad(out: ptr_i32):  # pragma: no cover
        a = b = 1  # noqa: F841

    with pytest.raises(FrontendError, match="chained"):
        compile_kernels([kernel(bad)], "bad")


def test_calling_kernel_from_python_rejected():
    def k(out: ptr_i32):  # pragma: no cover
        out[0] = 1

    wrapped = kernel(k)
    with pytest.raises(FrontendError, match="cannot be called"):
        wrapped(None)


def test_device_function_must_return_on_all_paths():
    def bad(x: i32) -> i32:  # pragma: no cover
        if x > 0:
            return x

    with pytest.raises(FrontendError, match="return"):
        compile_kernels([_make_caller(device(bad))], "bad")


def _make_caller(dev_fn):
    # Build a kernel source that calls the given device function by name.
    namespace = {}
    src = (
        "def caller(out: ptr_i32, n: i32):\n"
        f"    out[0] = {dev_fn.name}(n)\n"
    )
    exec(  # noqa: S102 - test helper building DSL source dynamically
        "from repro.frontend import i32, ptr_i32\n" + src, namespace
    )
    fn = namespace["caller"]
    import ast
    import repro.frontend.dsl as dslmod

    class FakeSource(dslmod.KernelSource):
        def __init__(self):
            self.py_func = fn
            self.kind = "kernel"
            self.name = "caller"
            tree = ast.parse(src)
            self.tree = tree.body[0]
            self.filename = "dynamic.py"
            self.line_offset = 1
            self.globals_ns = {}

    return FakeSource()
