"""Tests for the Eq.(1) bypass model, the oracle search and the advisor."""

import dataclasses

import pytest

from repro.analysis.divergence_memory import MemoryDivergenceProfile
from repro.analysis.reuse_distance import (
    ReuseDistanceHistogram,
    ReuseDistanceModel,
)
from repro.gpu.arch import KEPLER_K40C, kepler_with_l1
from repro.optim import (
    BypassSearchResult,
    CUDAAdvisor,
    oracle_bypass_search,
    predict_optimal_warps,
)
from repro.optim.bypass_model import ctas_per_sm


def _reuse(avg: float) -> ReuseDistanceHistogram:
    h = ReuseDistanceHistogram(model=ReuseDistanceModel.CACHE_LINE)
    h.add_sample(int(avg))
    return h


def _divergence(degree: int) -> MemoryDivergenceProfile:
    md = MemoryDivergenceProfile(line_size=128)
    md.add(degree)
    return md


class TestEquationOne:
    def test_literal_formula(self):
        arch = kepler_with_l1(16)
        # floor(16384 / (4 * 128 * 2 * 2)) = floor(8) = 8
        pred = predict_optimal_warps(
            arch, _reuse(4), _divergence(2), num_ctas=arch.num_sms * 2,
            warps_per_cta=16,
        )
        assert pred.ctas_per_sm == 2
        assert pred.raw_value == pytest.approx(8.0)
        assert pred.optimal_warps == 8
        assert pred.bypassing_recommended

    def test_clamped_to_warp_count(self):
        arch = kepler_with_l1(48)
        pred = predict_optimal_warps(
            arch, _reuse(1), _divergence(1), num_ctas=1, warps_per_cta=4
        )
        # Tiny footprint: everything fits; no bypassing recommended.
        assert pred.optimal_warps == 4
        assert not pred.bypassing_recommended

    def test_clamped_to_at_least_one(self):
        arch = kepler_with_l1(16)
        pred = predict_optimal_warps(
            arch, _reuse(1000), _divergence(32), num_ctas=1000,
            warps_per_cta=8,
        )
        assert pred.optimal_warps == 1

    def test_l1_size_matters(self):
        """Bigger L1 -> more warps allowed in cache (the 16/48 KB axis
        of Figure 6)."""
        small = predict_optimal_warps(
            kepler_with_l1(16), _reuse(4), _divergence(2),
            num_ctas=30, warps_per_cta=32,
        )
        large = predict_optimal_warps(
            kepler_with_l1(48), _reuse(4), _divergence(2),
            num_ctas=30, warps_per_cta=32,
        )
        assert large.optimal_warps == 3 * small.optimal_warps

    def test_ctas_per_sm(self):
        assert ctas_per_sm(KEPLER_K40C, 1) == 1
        assert ctas_per_sm(KEPLER_K40C, KEPLER_K40C.num_sms * 3) == 3
        assert ctas_per_sm(KEPLER_K40C, 10**6) == KEPLER_K40C.max_ctas_per_sm


class TestOracleSearch:
    def test_exhaustive_and_picks_minimum(self):
        costs = {1: 50.0, 2: 30.0, 3: 40.0, 4: 100.0}
        calls = []

        def run(k):
            calls.append(k)
            return costs[k]

        result = oracle_bypass_search(run, warps_per_cta=4)
        assert calls == [1, 2, 3, 4]
        assert result.best_warps == 2
        assert result.baseline_cycles == 100.0
        assert result.oracle_normalized == pytest.approx(0.3)
        assert result.oracle_speedup == pytest.approx(100 / 30)
        assert result.normalized(3) == pytest.approx(0.4)


class TestAdvisorEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.apps import build_app

        advisor = CUDAAdvisor(
            arch=KEPLER_K40C, modes=("memory", "blocks"),
        )
        return advisor.profile(build_app("nn", num_records=512))

    def test_all_analyses_present(self, report):
        assert report.reuse_element is not None
        assert report.reuse_cache_line is not None
        assert report.memory_divergence is not None
        assert report.branch_divergence is not None
        assert report.bypass_prediction is not None
        assert report.overhead is not None

    def test_nn_characteristics(self, report):
        """nn is streaming (excluded from Figure 4 for >99% no-reuse)
        with almost no branch divergence (Table 3: 4%)."""
        assert report.reuse_element.no_reuse_fraction > 0.9
        assert report.branch_divergence.divergence_percent < 10.0

    def test_overhead_positive(self, report):
        assert report.overhead.cycle_overhead > 1.0
        assert report.overhead.instruction_overhead > 1.0

    def test_advice_rendering(self, report):
        tips = report.advice()
        assert tips
        assert any("streaming" in t for t in tips)

    def test_instrumentation_validates(self, report):
        # Both runs passed the app's check() (enforced inside profile()).
        assert report.baseline_results
        assert report.instrumented_results
