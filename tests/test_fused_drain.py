"""Fused in-flight analysis: byte-identity without the trace round-trip.

The fused path (``FusedSink`` + the analyzer bank) must reproduce the
batch analyzers exactly while never materializing or spilling a trace;
the fork-parallel segment drain must reproduce the serial streaming
drain while splitting the work across SM-range partitions:

* **Property tests** (hypothesis) push random interleaved
  memory/block/arith event streams through fused buffers at tiny flush
  granularities (down to one row) and through the parallel segment
  drain at tiny segment sizes, comparing every aggregate of the full
  plan against the batch analyzers -- including stride-sampling phases
  and keep-first capacity across flush boundaries.
* **App-level tests** run instrumented programs twice (fused vs
  in-RAM, parallel-drain vs in-RAM) across serial / batched /
  fork-parallel configurations and assert identical analyses and
  accounting -- and that the fused spill directory stays empty.
* **Chaos** combines ``corrupt_spill`` with the parallel segment
  drain: drop accounting and analyses must match the in-RAM run, and
  the strict policy must still raise through the serial relay.
* **Degradation**: a launch that needs raw records (pc sampling)
  disables fused mode with a ``fused-records-unavailable`` warning and
  materializes the trace like a classic run.
"""

import os
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregates import full_plan
from repro.apps import build_app
from repro.errors import (
    AnalysisError,
    LaunchDegradedWarning,
    ProfilerError,
    TraceCorruptionError,
)
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C
from repro.gpu.device import Device
from repro.host.runtime import CudaRuntime
from repro.optim.advisor import CUDAAdvisor
from repro.passes.pipeline import (
    instrumentation_pipeline,
    optimization_pipeline,
)
from repro.profiler.buffers import (
    ColumnarArithBuffer,
    ColumnarBlockBuffer,
    ColumnarMemoryBuffer,
    clip_to_capacity,
    stride_sample,
)
from repro.profiler.pc_sampling import PCSampler
from repro.profiler.profiler import HookRuntime
from repro.profiler.session import ProfilingSession
from repro.profiler.streamdrain import (
    FusedSink,
    StreamDrain,
    parallel_segment_drain,
)
from repro.reliability.faultinject import FaultInjector
from repro.reliability.spill import SpillConfig
from repro.reliability.supervisor import FUSED_RECORDS_UNAVAILABLE
from tests.conftest import KERNELS
from tests.test_streaming_drain import (
    APPS,
    LINE_SIZE,
    _append_event,
    _assert_bank_matches_batch,
    _assert_sessions_match,
    _batch_profile,
    _build_buffers,
    _EVENTS,
)


def _fused_buffers(events, flush_rows, rate=1, capacity=None):
    """Spill-free buffers wired into a fused bank at ``flush_rows``."""
    mem = ColumnarMemoryBuffer(None, None)
    block = ColumnarBlockBuffer(None, None)
    arith = ColumnarArithBuffer(None, None)
    bank = full_plan(LINE_SIZE).create_bank()
    drain = StreamDrain(bank, sample_rate=rate, capacity=capacity)
    sink = FusedSink(drain, mem, block, arith, flush_rows)
    for seq, event in enumerate(events):
        _append_event(event, seq, mem, block, arith)
    sink.flush()
    return bank, drain


class TestFusedSinkProperty:
    @settings(max_examples=30, deadline=None)
    @given(events=_EVENTS, flush_rows=st.integers(1, 17))
    def test_full_plan_matches_batch_across_flush_sizes(
        self, events, flush_rows
    ):
        bank, _ = _fused_buffers(events, flush_rows)
        _assert_bank_matches_batch(bank, _batch_profile(events))

    @settings(max_examples=30, deadline=None)
    @given(
        events=_EVENTS,
        flush_rows=st.integers(1, 13),
        rate=st.sampled_from([2, 3, 5]),
        capacity=st.sampled_from([None, 3, 10]),
    )
    def test_stride_phases_and_capacity_across_flushes(
        self, events, flush_rows, rate, capacity
    ):
        # The joint in-flight ranking of each flushed (memory, arith)
        # window must reproduce the *global* stride phase the batch
        # path computes over the whole merged stream at once.
        bank, drain = _fused_buffers(events, flush_rows, rate, capacity)

        batch = _batch_profile(events)
        m, a = stride_sample(
            batch.memory_records, batch.arith_records, rate
        )
        clipped = 0
        m, n = clip_to_capacity(m, capacity)
        clipped += n
        a, n = clip_to_capacity(a, capacity)
        clipped += n
        b, n = clip_to_capacity(batch.block_records, capacity)
        clipped += n
        _assert_bank_matches_batch(
            bank,
            SimpleNamespace(
                memory_records=m, block_records=b, arith_records=a
            ),
        )
        assert drain.clipped == clipped
        assert drain.stats.memory_rows == len(m)
        assert drain.stats.arith_rows == len(a)
        assert drain.stats.block_rows == len(b)


class TestParallelSegmentDrainProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        events=_EVENTS,
        segment_rows=st.integers(1, 9),
        num_sms=st.integers(2, 4),
        workers=st.integers(2, 3),
    )
    def test_matches_batch_across_partitions(
        self, tmp_path_factory, events, segment_rows, num_sms, workers
    ):
        # Real traces are SM-major (the interpreter runs SMs in index
        # order), which is what makes SM-range partitions contiguous
        # row blocks; the synthetic stream mirrors that shape.
        events = sorted(events, key=lambda e: e[1] % num_sms)
        directory = str(tmp_path_factory.mktemp("pdrain"))
        spill = SpillConfig(directory=directory, segment_rows=segment_rows)
        mem, block, arith = _build_buffers(events, spill)
        plan = full_plan(LINE_SIZE)
        result = parallel_segment_drain(
            plan, mem, block, arith, num_sms, workers
        )
        if result is None:
            # Nothing spilled, so the parallel path declines -- and
            # must leave the buffers intact for the serial relay.
            bank = plan.create_bank()
            StreamDrain(bank).feed_buffers(mem, block, arith)
            _assert_bank_matches_batch(bank, _batch_profile(events))
            return
        _assert_bank_matches_batch(result["bank"], _batch_profile(events))
        # Segments are consumed: files gone, buffers empty.
        assert not os.listdir(directory)
        assert len(mem) == len(block) == len(arith) == 0


# -- app-level equivalence ------------------------------------------------------


def _session(app, streaming=False, fused=False, workers=None, backend=None,
             sample_rate=1, capacity=None, spill_dir=None, spill_rows=64,
             drain_workers=None, configure=None):
    app_name, app_kwargs = app
    program = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(program.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession(
        buffer_capacity=capacity,
        sample_rate=sample_rate,
        spill_dir=spill_dir,
        spill_rows=spill_rows,
        streaming=full_plan(LINE_SIZE) if streaming else None,
        fused=full_plan(LINE_SIZE) if fused else None,
        drain_workers=drain_workers,
    )
    device = Device(KEPLER_K40C)
    if workers is not None:
        device.parallel_workers = workers
    if backend is not None:
        device.backend = backend
    if configure is not None:
        configure(device)
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = program.prepare(runtime)
    program.run(runtime, image, state)
    return session, device


class TestFusedApps:
    @pytest.mark.parametrize("app", APPS, ids=lambda a: a[0])
    def test_serial_never_spills(self, app, tmp_path):
        in_ram, _ = _session(app)
        fused, _ = _session(
            app, fused=True, spill_dir=str(tmp_path), spill_rows=32
        )
        _assert_sessions_match(in_ram, fused)
        # The whole point: analysis in flight, zero trace I/O -- even
        # with a spill config, which only sets the flush granularity.
        assert not os.path.exists(tmp_path) or not os.listdir(tmp_path)

    @pytest.mark.parametrize("app", APPS, ids=lambda a: a[0])
    def test_batched_backend(self, app):
        in_ram, _ = _session(app, backend="batched")
        fused, _ = _session(app, fused=True, backend="batched")
        _assert_sessions_match(in_ram, fused)

    @pytest.mark.parametrize("app", APPS, ids=lambda a: a[0])
    def test_fork_parallel_bank_ship(self, app):
        # No sampling/capacity: each shard runs its own fused bank and
        # ships it; the parent merges bank-to-bank in SM order.
        in_ram, _ = _session(app, workers=4)
        fused, _ = _session(app, fused=True, workers=4)
        _assert_sessions_match(in_ram, fused)

    def test_fork_parallel_sampled_relays(self):
        # Sampling needs the global stride phase, so shards fall back
        # to shipping raw state for the parent's running cursors.
        app = APPS[0]
        in_ram, _ = _session(app, workers=4, sample_rate=3)
        fused, _ = _session(app, fused=True, workers=4, sample_rate=3)
        _assert_sessions_match(in_ram, fused)

    def test_fork_parallel_capacity_relays(self):
        app = APPS[1]
        in_ram, _ = _session(app, workers=4, capacity=60)
        fused, _ = _session(app, fused=True, workers=4, capacity=60)
        _assert_sessions_match(in_ram, fused)

    def test_sampled_and_capped_serial(self):
        app = APPS[1]
        in_ram, _ = _session(app, sample_rate=2, capacity=40)
        fused, _ = _session(app, fused=True, sample_rate=2, capacity=40)
        _assert_sessions_match(in_ram, fused)

    def test_fused_matches_streaming_byte_for_byte(self, tmp_path):
        # The three pipeline shapes agree pairwise; fused vs streaming
        # closes the triangle the two in-RAM comparisons open.
        app = APPS[0]
        streaming, _ = _session(
            app, streaming=True, spill_dir=str(tmp_path), spill_rows=32
        )
        fused, _ = _session(app, fused=True)
        for s, f in zip(streaming.profiles, fused.profiles):
            assert len(s.memory_records) == len(f.memory_records)
            assert s.dropped_records == f.dropped_records
            for name in ("reuse_element", "reuse_cache_line"):
                a = s.aggregates.result(name)
                b = f.aggregates.result(name)
                assert a.frequencies == b.frequencies


class TestParallelDrainApps:
    def test_engages_and_matches_in_ram(self, tmp_path):
        app = APPS[0]
        in_ram, _ = _session(app, spill_dir=str(tmp_path / "a"))
        serial, _ = _session(
            app, streaming=True, spill_dir=str(tmp_path / "b"),
            spill_rows=32,
        )
        parallel, _ = _session(
            app, streaming=True, spill_dir=str(tmp_path / "c"),
            spill_rows=32, drain_workers=2,
        )
        _assert_sessions_match(in_ram, parallel)
        assert not os.listdir(tmp_path / "c")
        # Engagement proof: every partition worker scans every segment
        # file, so the parallel counter is a multiple of the serial one.
        serial_segments = sum(
            p.stream_stats["segments_streamed"] for p in serial.profiles
        )
        parallel_segments = sum(
            p.stream_stats["segments_streamed"] for p in parallel.profiles
        )
        assert parallel_segments > serial_segments

    def test_sampling_declines_parallel_drain(self, tmp_path):
        # Global stride phase needs global order: the parallel path
        # must decline and the serial drain must still be exact.
        app = APPS[0]
        in_ram, _ = _session(app, sample_rate=3)
        parallel, _ = _session(
            app, streaming=True, sample_rate=3,
            spill_dir=str(tmp_path), spill_rows=32, drain_workers=2,
        )
        _assert_sessions_match(in_ram, parallel)


class TestChaosParallelDrain:
    def _corrupting(self, device):
        device.fault_injector = (
            FaultInjector()
            .inject("buffer_overflow", segment_rows=128)
            .inject("corrupt_spill", when={"kind": "memory", "segment": 0})
        )

    def test_corrupt_spill_matches_in_ram_accounting(self):
        with pytest.warns(LaunchDegradedWarning, match="corrupted spill"):
            in_ram, _ = _session(APPS[1], configure=self._corrupting)
        with pytest.warns(LaunchDegradedWarning, match="corrupted spill"):
            parallel, _ = _session(
                APPS[1], streaming=True, drain_workers=2,
                configure=self._corrupting,
            )
        _assert_sessions_match(in_ram, parallel)
        lost = sum(p.corrupt_records for p in parallel.profiles)
        assert lost > 0
        assert sum(p.dropped_records for p in parallel.profiles) >= lost

    def test_strict_policy_raises_through_serial_relay(self):
        def configure(device):
            device.failure_policy = "strict"
            self._corrupting(device)

        with pytest.raises(TraceCorruptionError):
            _session(
                APPS[1], streaming=True, drain_workers=2,
                configure=configure,
            )


# -- degradation: launches that need raw records --------------------------------


class TestFusedDegradation:
    def _instrumented(self):
        module = compile_kernels([KERNELS["strided_sum"]], "m")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        return module

    def test_pc_sampling_disables_fused(self):
        module = self._instrumented()
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        hooks = HookRuntime(img, "strided_sum", (), "x",
                            fused=full_plan(LINE_SIZE))
        assert hooks.fused
        sampler = PCSampler(period=16)
        data = np.arange(256, dtype=np.float32)
        dx = dev.malloc(data.nbytes)
        do = dev.malloc(4 * 64)
        dev.memcpy_htod(dx, data)
        with pytest.warns(LaunchDegradedWarning, match="pc sampling"):
            dev.launch(img, "strided_sum", 1, 64, [dx, do, 256, 3],
                       hooks=hooks, pc_sampler=sampler)
        # The launch materialized a classic trace: real records, no
        # fused bank, and the sampler got its PCs.
        assert not hooks.fused
        assert hooks.profile.aggregates is None
        assert len(hooks.profile.memory_records) > 0
        assert sampler.profile.total_samples > 0
        events = dev.supervisor.events_for(FUSED_RECORDS_UNAVAILABLE)
        assert len(events) == 1

    def test_fused_and_streaming_mutually_exclusive(self):
        module = self._instrumented()
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        with pytest.raises(ProfilerError, match="mutually exclusive"):
            HookRuntime(img, "strided_sum", (), "x",
                        fused=full_plan(LINE_SIZE),
                        streaming=full_plan(LINE_SIZE))

    def test_advisor_rejects_both_drains(self):
        with pytest.raises(AnalysisError, match="mutually exclusive"):
            CUDAAdvisor(streaming_drain=True, fused_drain=True)
