"""Chaos suite for the profiling service.

The contract under test (ISSUE: fault-tolerant profiling service): a
service under injected worker crashes, job hangs, cache corruption and
worker loss during a submit storm still completes every job, and every
report it hands back -- fresh, retried, degraded-serial or cache-hit --
is **byte-identical** to a clean serial run of the same spec.  The
headline test drives all four fault classes through one scripted
session; the smaller tests pin each rung of the failure ladder.
"""

import time

import pytest

from repro.errors import LaunchDegradedWarning
from repro.profiler.session import SESSION_COUNTERS
from repro.reliability import FaultInjector
from repro.service import (
    CACHE_HIT,
    DEGRADED_SERIAL,
    FRESH,
    RETRIED,
    JobSpec,
    ProfilingService,
    run_job,
)

SYRK = ("syrk", {"n": 16, "m": 16}, {})


def _spec(app, app_kwargs, config):
    config = dict(config)
    if "modes" in config:
        config["modes"] = tuple(config["modes"])
    return JobSpec(
        app=app, app_kwargs=tuple(sorted(app_kwargs.items())), **config
    )


def _baseline(app, app_kwargs, config):
    """The clean serial reference: run_job directly, no pool, no cache."""
    return run_job(_spec(app, app_kwargs, config))["payload"]


# -- single-fault rungs of the ladder ----------------------------------------


class TestFaultLadder:
    def test_worker_crash_retried_byte_identical(self):
        injector = FaultInjector(seed=7).inject(
            "service_worker_crash", when={"job": "job-1", "attempt": 0}
        )
        with ProfilingService(workers=1, injector=injector,
                              backoff=0.01) as svc:
            result = svc.submit(*SYRK[:1], app_kwargs=SYRK[1]).result(
                timeout=120
            )
        assert result.source == RETRIED
        assert result.attempts == 2
        assert result.reasons == ["job-worker-crash"]
        assert svc.counters["worker_crashes"] == 1
        assert svc.counters["retries"] == 1
        assert result.payload == _baseline(*SYRK)

    def test_job_hang_reaped_and_retried(self):
        injector = FaultInjector(seed=7).inject(
            "service_job_hang", when={"job": "job-1", "attempt": 0}
        )
        with ProfilingService(workers=1, injector=injector,
                              job_timeout=1.0, heartbeat_interval=0.05,
                              backoff=0.01) as svc:
            result = svc.submit(*SYRK[:1], app_kwargs=SYRK[1]).result(
                timeout=120
            )
        assert result.source == RETRIED
        assert result.reasons == ["job-timeout"]
        assert svc.counters["job_timeouts"] == 1
        assert result.payload == _baseline(*SYRK)

    def test_unrecoverable_crash_degrades_to_serial(self):
        # the worker crashes on *every* attempt: retries exhaust, the
        # pool burns its respawn budget, the job re-runs in-process
        injector = FaultInjector(seed=7).inject(
            "service_worker_crash", when={"job": "job-1"}
        )
        with ProfilingService(workers=1, injector=injector,
                              max_attempts=3, backoff=0.01) as svc:
            handle = svc.submit(*SYRK[:1], app_kwargs=SYRK[1])
            with pytest.warns(LaunchDegradedWarning):
                result = handle.result(timeout=120)
        assert result.source == DEGRADED_SERIAL
        assert result.attempts == 4  # 3 pool attempts + 1 serial
        assert "job-worker-crash" in result.reasons
        assert "job-serial-fallback" in result.reasons
        assert svc.counters["serial_fallbacks"] == 1
        assert result.payload == _baseline(*SYRK)

    def test_pool_loss_at_submit_self_heals(self):
        injector = FaultInjector(seed=7).inject(
            "service_pool_loss", when={"job": "job-1"}
        )
        with ProfilingService(workers=2, injector=injector,
                              backoff=0.01) as svc:
            result = svc.submit(*SYRK[:1], app_kwargs=SYRK[1]).result(
                timeout=120
            )
            assert len(svc.pool.workers) == 2  # respawned back to size
        assert result.payload == _baseline(*SYRK)
        assert svc.counters["respawns"] >= 1


# -- the headline scripted chaos session -------------------------------------

#: >= 8 jobs across >= 3 apps; distinct specs so nothing coalesces.
CHAOS_JOBS = [
    ("syrk", {"n": 16, "m": 16}, {}),
    ("syrk", {"n": 16, "m": 16}, {"modes": ("memory",)}),
    ("syrk", {"n": 24, "m": 16}, {}),
    ("hotspot", {"n": 32, "steps": 2}, {}),
    ("hotspot", {"n": 32, "steps": 2}, {"sample_rate": 2}),
    ("hotspot", {"n": 32, "steps": 2}, {"heatmap": True}),
    ("bicg", {"nx": 32, "ny": 32}, {}),
    ("bicg", {"nx": 32, "ny": 32}, {"time_buckets": 32}),
    ("bicg", {"nx": 32, "ny": 32}, {"columnar": True}),
]


class TestChaosSession:
    def test_every_fault_class_yields_clean_bytes(self, tmp_path):
        baselines = [_baseline(*job) for job in CHAOS_JOBS]
        injector = (
            FaultInjector(seed=11)
            # a worker dies holding job-2's first attempt
            .inject("service_worker_crash",
                    when={"job": "job-2", "attempt": 0})
            # a worker wedges on job-5's first attempt (no heartbeats)
            .inject("service_job_hang",
                    when={"job": "job-5", "attempt": 0})
            # a live worker is killed as job-7 lands (submit storm
            # during worker loss)
            .inject("service_pool_loss", when={"job": "job-7"})
            # one bicg cache entry is corrupted right after publication
            .inject("cache_corrupt_entry", when={"app": "bicg"}, count=1)
        )
        with ProfilingService(
            workers=2, cache_dir=str(tmp_path / "cache"),
            injector=injector, job_timeout=3.0, heartbeat_interval=0.05,
            backoff=0.01,
        ) as svc:
            handles = [
                svc.submit(app, config, app_kwargs=kwargs)
                for app, kwargs, config in CHAOS_JOBS
            ]
            svc.wait(timeout=300)

            # every job completed; none failed
            results = [h.result() for h in handles]
            assert [h.state for h in handles] == ["done"] * len(handles)

            # ... and every payload matches its clean serial baseline
            for result, payload in zip(results, baselines):
                assert result.payload == payload

            # the injected faults actually happened and were absorbed
            crashed = next(r for h, r in zip(handles, results)
                           if h.id == "job-2")
            assert "job-worker-crash" in crashed.reasons
            hung = next(r for h, r in zip(handles, results)
                        if h.id == "job-5")
            assert "job-timeout" in hung.reasons
            assert svc.counters["job_timeouts"] >= 1
            assert svc.counters["worker_crashes"] >= 1
            assert svc.counters["respawns"] >= 1

            # the corrupted cache entry: find which key the injector
            # hit, resubmit that exact spec -- the service quarantines
            # the entry and transparently re-simulates to clean bytes
            fired = [ctx for point, ctx in injector.log
                     if point == "cache_corrupt_entry"]
            assert len(fired) == 1
            bad_key = fired[0]["key"]
            idx = next(i for i, h in enumerate(handles)
                       if h.key == bad_key)
            app, kwargs, config = CHAOS_JOBS[idx]
            healed = svc.submit(app, config, app_kwargs=kwargs).result(
                timeout=120
            )
            assert healed.source == FRESH
            assert "cache-entry-corrupt" in healed.reasons
            assert healed.payload == baselines[idx]
            assert svc.cache.stats["quarantined"] == 1

            # every *other* report is now a byte-identical cache hit
            for (app, kwargs, config), payload in zip(
                CHAOS_JOBS, baselines
            ):
                hit = svc.submit(app, config, app_kwargs=kwargs).result(
                    timeout=120
                )
                assert hit.source == CACHE_HIT
                assert hit.payload == payload


# -- warm-cache speedup + zero-work assertion --------------------------------


class TestWarmCache:
    def test_warm_resubmission_10x_faster_and_zero_work(self, tmp_path):
        with ProfilingService(workers=1,
                              cache_dir=str(tmp_path / "cache")) as svc:
            t0 = time.perf_counter()
            cold = svc.submit(*SYRK[:1], app_kwargs=SYRK[1]).result(
                timeout=120
            )
            cold_elapsed = time.perf_counter() - t0
            assert cold.source == FRESH

            executed = svc.counters["jobs_executed"]
            dispatched = svc.counters["dispatched"]
            sessions = dict(SESSION_COUNTERS)

            t0 = time.perf_counter()
            warm = svc.submit(*SYRK[:1], app_kwargs=SYRK[1]).result(
                timeout=120
            )
            warm_elapsed = time.perf_counter() - t0

            assert warm.source == CACHE_HIT
            assert warm.payload == cold.payload
            assert warm_elapsed * 10 <= cold_elapsed
            # zero simulation work in this process or any worker:
            # nothing dispatched, nothing executed, no profiling
            # session constructed, no launch profiled
            assert svc.counters["jobs_executed"] == executed
            assert svc.counters["dispatched"] == dispatched
            assert dict(SESSION_COUNTERS) == sessions
