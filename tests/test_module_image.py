"""Tests for DeviceModuleImage: shared layout, function table, ipostdom
caching, and launch-result bookkeeping."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import Device, KEPLER_K40C
from repro.ir.types import AddressSpace


class TestSharedLayout:
    def test_offsets_are_aligned_and_disjoint(self, fresh_module,
                                              kepler_device):
        image = kepler_device.load_module(fresh_module)
        tile = fresh_module.globals["block_reduce.tile"]
        offset = image.shared_offsets["block_reduce.tile"]
        assert offset % tile.element_type.size_bytes() == 0
        assert image.shared_bytes_per_cta >= tile.count * 4

    def test_no_shared_globals_means_empty_arena(self, kepler_device):
        from repro.ir import Module, VOID, IRBuilder

        m = Module("empty", target="nvptx")
        fn = m.add_function("k", VOID, [], kind="kernel")
        IRBuilder.at_end(fn.add_block("entry")).ret()
        image = kepler_device.load_module(m)
        assert image.shared_bytes_per_cta == 0


class TestFunctionTable:
    def test_kernels_and_device_functions_enumerated(self, fresh_module,
                                                     kepler_device):
        image = kepler_device.load_module(fresh_module)
        names = {fn.name for fn in image.functions_by_id}
        assert "saxpy" in names
        assert "clampf" in names  # device function
        # Hooks and intrinsics are not in the code-centric table.
        assert "nvvm.tid.x" not in names
        for name, fid in image.function_ids.items():
            assert image.functions_by_id[fid].name == name

    def test_ids_match_instrumentation_assignment(self, fresh_module,
                                                  kepler_device):
        from repro.passes.instrument_callret import assign_function_ids

        image = kepler_device.load_module(fresh_module)
        assert assign_function_ids(fresh_module) == image.function_ids


class TestModuleLoading:
    def test_host_module_rejected(self, kepler_device):
        from repro.ir import Module

        with pytest.raises(LaunchError, match="not a device module"):
            kepler_device.load_module(Module("host", target="host"))

    def test_ipostdom_precomputed_for_all_functions(self, fresh_module,
                                                    kepler_device):
        image = kepler_device.load_module(fresh_module)
        fn = fresh_module.get_function("divergent_kernel")
        for block in fn.blocks:
            # Must not raise; entry of a kernel always has some value.
            image.ipostdom(fn, block)


class TestLaunchResult:
    def test_bookkeeping_fields(self, fresh_module, kepler_device):
        image = kepler_device.load_module(fresh_module)
        dx = kepler_device.malloc(4 * 128)
        dy = kepler_device.malloc(4 * 128)
        result = kepler_device.launch(
            image, "saxpy", grid=2, block=64, args=[dx, dy, 1.0, 128]
        )
        assert result.kernel == "saxpy"
        assert result.grid == (2, 1, 1)
        assert result.block == (64, 1, 1)
        assert result.num_ctas == 2
        assert result.warps_per_cta == 2
        assert result.instructions > 0
        assert result.cycles > 0
        assert result.transactions > 0
        assert result.wall_seconds > 0
        assert 0.0 <= result.l1_hit_rate <= 1.0
