"""Tests for the profiler: hook runtime, shadow stacks, code-centric and
data-centric attribution, trace buffers, cross-instance statistics."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    aggregate_instances,
    metric_cycles,
    metric_memory_events,
)
from repro.errors import ProfilerError
from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime, host_function
from repro.host.shadow_stack import GLOBAL_HOST_STACK, HostShadowStack, HostFrame
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import (
    DeviceTraceBuffer,
    ProfilingSession,
    format_code_centric_view,
)
from tests.conftest import KERNELS


@pytest.fixture
def profiled_run():
    """Run the saxpy_clamped kernel fully instrumented under a session."""
    module = compile_kernels(
        [KERNELS["saxpy_clamped"]], "profmod"
    )
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)

    session = ProfilingSession()
    rt = CudaRuntime(Device(KEPLER_K40C), profiler=session)
    image = rt.device.load_module(module)

    @host_function
    def run_app():
        n = 64
        hx = rt.host_malloc(n, np.float32, "h_x")
        hx.array[:] = np.arange(n)
        dx = rt.cuda_malloc(4 * n, "d_x")
        dy = rt.cuda_malloc(4 * n, "d_y")
        rt.cuda_memcpy_htod(dx, hx)
        rt.cuda_memcpy_htod(dy, hx)
        rt.launch_kernel(image, "saxpy_clamped", 2, 32, [dx, dy, 2.0, n])
        return dx

    dx = run_app()
    return session, rt, dx


class TestHostShadowStack:
    def test_push_pop_balance(self):
        stack = HostShadowStack()
        assert stack.depth() == 1  # main
        stack.push(HostFrame("f", "x.py", 10))
        assert stack.depth() == 2
        stack.pop()
        assert stack.depth() == 1

    def test_underflow_rejected(self):
        stack = HostShadowStack()
        with pytest.raises(RuntimeError, match="underflow"):
            stack.pop()

    def test_decorator_pushes_during_call(self):
        seen = {}

        @host_function
        def inner():
            seen["path"] = GLOBAL_HOST_STACK.snapshot()

        @host_function
        def outer():
            inner()

        depth_before = GLOBAL_HOST_STACK.depth()
        outer()
        assert GLOBAL_HOST_STACK.depth() == depth_before
        names = [f.function for f in seen["path"]]
        assert names[-2:] == ["outer", "inner"]

    def test_decorator_pops_on_exception(self):
        @host_function
        def boom():
            raise ValueError("x")

        depth_before = GLOBAL_HOST_STACK.depth()
        with pytest.raises(ValueError):
            boom()
        assert GLOBAL_HOST_STACK.depth() == depth_before


class TestTraceBuffer:
    def test_capacity_drops(self):
        buf = DeviceTraceBuffer(capacity=2)
        assert buf.append(1)
        assert buf.append(2)
        assert not buf.append(3)
        assert buf.dropped == 1
        assert buf.total_appended == 3

    def test_drain_empties(self):
        buf = DeviceTraceBuffer()
        buf.append("a")
        assert buf.drain() == ["a"]
        assert len(buf) == 0


class TestKernelProfile:
    def test_records_collected(self, profiled_run):
        session, _, _ = profiled_run
        profile = session.last_profile
        assert profile.kernel == "saxpy_clamped"
        assert profile.memory_records
        assert profile.block_records
        assert profile.arith_records
        assert profile.launch_result is not None
        assert profile.num_ctas == 2

    def test_memory_record_contents(self, profiled_run):
        session, rt, dx = profiled_run
        profile = session.last_profile
        loads = [r for r in profile.memory_records if r.op.value == 1]
        stores = [r for r in profile.memory_records if r.op.value == 2]
        # 2 warps x (2 loads + 1 store).
        assert len(loads) == 4
        assert len(stores) == 2
        assert all(r.bits == 32 for r in profile.memory_records)
        # Addresses fall inside the two device allocations.
        x_records = [
            r for r in loads
            if dx.addr <= r.active_addresses()[0] < dx.addr + dx.nbytes
        ]
        assert x_records

    def test_gpu_call_paths_include_device_function(self, profiled_run):
        session, _, _ = profiled_run
        profile = session.last_profile
        names_by_path = set()
        for record in profile.block_records:
            path = profile.call_paths.path(record.call_path_id)
            names = tuple(
                profile.functions_by_id[e.function_id].name for e in path
            )
            names_by_path.add((record.block_name.split(":")[0], names))
        # Blocks execute both at kernel level and inside clampf, and the
        # clampf blocks carry the concatenated kernel->device path.
        assert ("saxpy_clamped", ("saxpy_clamped",)) in names_by_path
        assert ("clampf", ("saxpy_clamped", "clampf")) in names_by_path

    def test_code_centric_view_renders(self, profiled_run):
        session, _, _ = profiled_run
        profile = session.last_profile
        record = profile.memory_records[0]
        view = format_code_centric_view(
            profile.host_call_path,
            profile.call_paths.path(record.call_path_id),
            profile.functions_by_id,
            f"conftest.py: {record.line}",
        )
        assert "CPU 0: main()" in view
        assert "run_app()" in view
        assert "GPU" in view
        assert "saxpy_clamped()" in view

    def test_regrouping_by_cta(self, profiled_run):
        session, _, _ = profiled_run
        grouped = session.last_profile.memory_records_by_cta()
        assert set(grouped) == {0, 1}
        total = sum(len(v) for v in grouped.values())
        assert total == len(session.last_profile.memory_records)


class TestDataCentric:
    def test_resolve_device_to_host(self, profiled_run):
        session, rt, dx = profiled_run
        dc = session.data_centric_map()
        view = dc.resolve(dx.addr + 8)
        assert view.device is not None
        assert view.device.name == "d_x"
        assert view.transfer is not None
        assert view.host is not None
        assert view.host.name == "h_x"
        rendered = view.render()
        assert "d_x" in rendered and "h_x" in rendered
        assert "cudaMemcpy" in rendered

    def test_unknown_address(self, profiled_run):
        session, _, _ = profiled_run
        view = session.data_centric_map().resolve(0x7)
        assert view.device is None
        assert "no device allocation" in view.render()

    def test_allocation_call_paths_recorded(self, profiled_run):
        session, _, dx = profiled_run
        record = session.data_centric_map().find_device(dx.addr)
        names = [f.function for f in record.call_path]
        assert names[0] == "main"
        assert "run_app" in names


class TestShadowStackErrors:
    def test_gpu_pop_underflow_rejected(self, fresh_module):
        from repro.profiler import HookRuntime

        dev = Device(KEPLER_K40C)
        img = dev.load_module(fresh_module)
        hooks = HookRuntime(img, "saxpy", (), "x")

        class W:
            global_warp_id = 0
            warp_size = 32
            cta_linear = 0
            warp_in_cta = 0

        with pytest.raises(ProfilerError, match="underflow"):
            hooks._on_pop(W())


class TestOfflineStatistics:
    def test_aggregation_across_instances(self):
        module = compile_kernels([KERNELS["saxpy"]], "m")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        session = ProfilingSession()
        rt = CudaRuntime(Device(KEPLER_K40C), profiler=session)
        image = rt.device.load_module(module)

        @host_function
        def launch_many():
            dx = rt.cuda_malloc(4 * 64, "x")
            dy = rt.cuda_malloc(4 * 64, "y")
            for _ in range(5):
                rt.launch_kernel(image, "saxpy", 2, 32, [dx, dy, 1.0, 64])

        launch_many()
        stats = aggregate_instances(session.profiles, metric_memory_events)
        assert len(stats) == 1
        s = stats[0]
        assert s.instances == 5
        assert s.kernel == "saxpy"
        assert s.minimum == s.maximum == s.mean  # deterministic kernel
        assert s.stddev == 0.0
        assert "saxpy" in s.render()

    def test_different_call_paths_not_merged(self):
        module = compile_kernels([KERNELS["saxpy"]], "m")
        instrumentation_pipeline(["memory"]).run(module)
        session = ProfilingSession()
        rt = CudaRuntime(Device(KEPLER_K40C), profiler=session)
        image = rt.device.load_module(module)
        dx = rt.cuda_malloc(4 * 64, "x")

        @host_function
        def site_a():
            rt.launch_kernel(image, "saxpy", 1, 32, [dx, dx, 1.0, 32])

        @host_function
        def site_b():
            rt.launch_kernel(image, "saxpy", 1, 32, [dx, dx, 1.0, 32])

        site_a()
        site_b()
        stats = aggregate_instances(session.profiles, metric_cycles)
        assert len(stats) == 2


class TestStatisticsMetrics:
    def test_divergent_block_fraction_metric(self):
        from repro.analysis.statistics import (
            metric_divergent_block_fraction,
        )
        from repro.profiler.records import BlockRecord

        class P:
            block_records = [
                BlockRecord(seq=0, cta=0, warp_in_cta=0, block_name="k:a",
                            line=1, col=1, active_lanes=32,
                            resident_lanes=32, call_path_id=0),
                BlockRecord(seq=1, cta=0, warp_in_cta=0, block_name="k:b",
                            line=2, col=1, active_lanes=4,
                            resident_lanes=32, call_path_id=0),
            ]

        assert metric_divergent_block_fraction(P()) == 0.5

        class Empty:
            block_records = []

        assert metric_divergent_block_fraction(Empty()) == 0.0

    def test_metric_cycles_requires_launch_result(self):
        from repro.analysis.statistics import metric_cycles
        from repro.errors import AnalysisError

        class P:
            launch_result = None

        with pytest.raises(AnalysisError):
            metric_cycles(P())

    def test_varying_metric_statistics(self):
        from repro.analysis.statistics import aggregate_instances

        class P:
            def __init__(self, v):
                self.kernel = "k"
                self.host_call_path = ()
                self.v = v

        stats = aggregate_instances(
            [P(1.0), P(2.0), P(3.0)], metric=lambda p: p.v
        )[0]
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev == pytest.approx((2 / 3) ** 0.5)
