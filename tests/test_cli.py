"""Tests for the CLI (the artifact's run/showoutput workflow)."""

from repro.cli import main


class TestList:
    def test_lists_table2(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("backprop", "bfs", "nw", "syr2k"):
            assert name in out
        assert "graph1MW_6.txt" in out  # paper inputs shown


class TestProfile:
    def test_profile_modes_sections(self, capsys):
        code = main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "### RD_mode" in out
        assert "### MD_mode" in out
        assert "### BD_mode" in out
        assert "### advice" in out
        assert "### overhead" not in out

    def test_profile_with_overhead(self, capsys):
        assert main(["profile", "nn", "--modes", "memory"]) == 0
        out = capsys.readouterr().out
        assert "### overhead" in out
        assert "x cycles" in out

    def test_unknown_app_rejected(self, capsys):
        assert main(["profile", "doom"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown app 'doom'")
        assert "Traceback" not in err

    def test_unknown_backend_rejected(self, capsys):
        assert main(["profile", "nn", "--backend", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown backend 'warp-drive'")

    def test_unknown_mode_rejected(self, capsys):
        assert main(["profile", "nn", "--modes", "memory,quantum"]) == 2
        assert "unknown analysis mode 'quantum'" in capsys.readouterr().err

    def test_conflicting_spill_knobs_rejected(self, capsys):
        assert main(["profile", "nn", "--spill-rows", "128"]) == 2
        assert "--spill-rows needs --spill-dir" in capsys.readouterr().err

    def test_bad_sample_rate_rejected(self, capsys):
        assert main(["profile", "nn", "--sample-rate", "0"]) == 2
        assert "--sample-rate must be >= 1" in capsys.readouterr().err

    def test_bad_workers_rejected(self, capsys):
        assert main(["profile", "nn", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_fused_and_streaming_drain_rejected(self, capsys):
        assert main([
            "profile", "nn", "--fused", "--streaming-drain",
        ]) == 2
        err = capsys.readouterr().err
        assert "--fused and --streaming-drain are mutually exclusive" in err

    def test_bad_drain_workers_rejected(self, capsys):
        assert main(["profile", "nn", "--drain-workers", "0"]) == 2
        assert "--drain-workers must be >= 1" in capsys.readouterr().err

    def test_profile_fused(self, capsys):
        code = main([
            "profile", "nn", "--fused", "--modes", "memory,blocks",
            "--no-overhead",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "### RD_mode" in out
        assert "### advice" in out

    def test_failure_policy_flag(self, capsys):
        assert main([
            "profile", "nn", "--modes", "memory", "--no-overhead",
            "--failure-policy", "strict",
        ]) == 0
        assert "### advice" in capsys.readouterr().out

    def test_repro_errors_are_one_line(self, capsys, monkeypatch):
        from repro.errors import LaunchError

        def boom(*args, **kwargs):
            raise LaunchError("device exploded")

        monkeypatch.setattr("repro.cli.CUDAAdvisor.profile", boom)
        assert main(["profile", "nn"]) == 1
        err = capsys.readouterr().err
        assert err == "error: device exploded\n"


class TestInterruptHygiene:
    def test_ctrl_c_is_one_line_and_exit_130(self, capsys, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.CUDAAdvisor.profile", interrupted)
        assert main(["profile", "nn"]) == 130
        captured = capsys.readouterr()
        assert captured.err == "interrupted\n"
        assert "Traceback" not in captured.err

    def test_ctrl_c_reaps_live_workers(self, capsys, monkeypatch):
        import multiprocessing
        import time

        def spawn_then_die(*args, **kwargs):
            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(target=time.sleep, args=(60,))
            proc.daemon = True
            proc.start()
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.CUDAAdvisor.profile", spawn_then_die)
        assert main(["profile", "nn"]) == 130
        captured = capsys.readouterr()
        assert captured.err == "interrupted (reaped 1 worker processes)\n"
        assert multiprocessing.active_children() == []


class TestServe:
    def test_serve_smoke_streams_events_and_caches(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out_dir = tmp_path / "out"
        code = main([
            "serve", "nn", "--workers", "0", "--repeat", "2",
            "--modes", "memory,blocks", "--no-overhead",
            "--cache-dir", str(cache), "-o", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "job-1" in out and "job-2" in out
        assert "done" in out
        assert "counters:" in out and "cache:" in out
        # the repeat of the identical spec coalesces onto the in-flight
        # job instead of re-simulating
        assert "source=coalesced" in out
        written = list(out_dir.glob("nn-*.json"))
        assert len(written) == 1  # both jobs share one key -> one artifact
        import json

        assert json.loads(written[0].read_text())["program"] == "nn"

    def test_serve_usage_errors(self, capsys):
        assert main(["serve", "nn", "--workers", "-1"]) == 2
        assert "--workers must be >= 0" in capsys.readouterr().err
        assert main(["serve", "nn", "--repeat", "0"]) == 2
        assert "--repeat must be >= 1" in capsys.readouterr().err
        assert main(["serve", "nn", "--cache-max-bytes", "0"]) == 2
        assert "--cache-max-bytes must be >= 1" in capsys.readouterr().err

    def test_serve_unknown_app_rejected(self, capsys):
        assert main(["serve", "doom"]) == 2
        assert "unknown app 'doom'" in capsys.readouterr().err


class TestCacheDirFlag:
    def test_profile_cache_dir_needs_format_json(self, tmp_path, capsys):
        assert main([
            "profile", "nn", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "--format json" in capsys.readouterr().err

    def test_export_cache_dir_rejects_include_runtime(self, tmp_path,
                                                      capsys):
        assert main([
            "export", "nn", "--cache-dir", str(tmp_path),
            "--include-runtime",
        ]) == 2
        assert "--include-runtime" in capsys.readouterr().err

    def test_export_cache_dir_cold_then_warm(self, tmp_path, capsys):
        import json

        args = ["export", "nn", "--no-overhead",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "cache fresh:" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        # key stability across invocations: the second run is a hit
        assert "cache cache-hit:" in warm.err
        assert warm.out == cold.out
        assert json.loads(warm.out)["program"] == "nn"


class TestPTX:
    def test_ptx_dump(self, capsys):
        assert main(["ptx", "nn", "--cc", "6.0"]) == 0
        out = capsys.readouterr().out
        assert ".target sm_60" in out
        assert ".visible .entry euclid(" in out


class TestJSON:
    def test_json_report_round_trips(self, capsys):
        import json

        assert main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
            "--json",
        ]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["program"] == "nn"
        assert data["arch"]["chip"] == "Tesla K40c"
        assert 0 <= data["reuse_element"]["no_reuse_fraction"] <= 1
        assert data["branch_divergence"]["total_blocks"] > 0
        assert data["bypass_prediction"]["warps_per_cta"] == 8
        assert isinstance(data["advice"], list) and data["advice"]


class TestInstrument:
    def test_dumps_instrumented_ir(self, capsys):
        assert main(["instrument", "nn", "--modes", "memory,blocks"]) == 0
        out = capsys.readouterr().out
        assert "call void @Record(i8* " in out
        assert "call void @passBasicBlock(" in out
        assert "define kernel void @euclid(" in out

    def test_no_optimize_keeps_allocas(self, capsys):
        assert main(["instrument", "nn", "--no-optimize"]) == 0
        out = capsys.readouterr().out
        assert "alloca" in out


class TestStatisticsSection:
    def test_multi_instance_stats_shown(self, capsys):
        assert main([
            "profile", "srad_v2", "--modes", "memory", "--no-overhead",
        ]) == 0
        out = capsys.readouterr().out
        assert "### per-call-path statistics" in out
        assert "srad_cuda_1" in out
        assert "srad_cuda_2" in out
