"""Tests for the CLI (the artifact's run/showoutput workflow)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_table2(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("backprop", "bfs", "nw", "syr2k"):
            assert name in out
        assert "graph1MW_6.txt" in out  # paper inputs shown


class TestProfile:
    def test_profile_modes_sections(self, capsys):
        code = main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "### RD_mode" in out
        assert "### MD_mode" in out
        assert "### BD_mode" in out
        assert "### advice" in out
        assert "### overhead" not in out

    def test_profile_with_overhead(self, capsys):
        assert main(["profile", "nn", "--modes", "memory"]) == 0
        out = capsys.readouterr().out
        assert "### overhead" in out
        assert "x cycles" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "doom"])


class TestPTX:
    def test_ptx_dump(self, capsys):
        assert main(["ptx", "nn", "--cc", "6.0"]) == 0
        out = capsys.readouterr().out
        assert ".target sm_60" in out
        assert ".visible .entry euclid(" in out


class TestJSON:
    def test_json_report_round_trips(self, capsys):
        import json

        assert main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
            "--json",
        ]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["program"] == "nn"
        assert data["arch"]["chip"] == "Tesla K40c"
        assert 0 <= data["reuse_element"]["no_reuse_fraction"] <= 1
        assert data["branch_divergence"]["total_blocks"] > 0
        assert data["bypass_prediction"]["warps_per_cta"] == 8
        assert isinstance(data["advice"], list) and data["advice"]


class TestInstrument:
    def test_dumps_instrumented_ir(self, capsys):
        assert main(["instrument", "nn", "--modes", "memory,blocks"]) == 0
        out = capsys.readouterr().out
        assert "call void @Record(i8* " in out
        assert "call void @passBasicBlock(" in out
        assert "define kernel void @euclid(" in out

    def test_no_optimize_keeps_allocas(self, capsys):
        assert main(["instrument", "nn", "--no-optimize"]) == 0
        out = capsys.readouterr().out
        assert "alloca" in out


class TestStatisticsSection:
    def test_multi_instance_stats_shown(self, capsys):
        assert main([
            "profile", "srad_v2", "--modes", "memory", "--no-overhead",
        ]) == 0
        out = capsys.readouterr().out
        assert "### per-call-path statistics" in out
        assert "srad_cuda_1" in out
        assert "srad_cuda_2" in out
