"""Tests for the CLI (the artifact's run/showoutput workflow)."""

from repro.cli import main


class TestList:
    def test_lists_table2(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("backprop", "bfs", "nw", "syr2k"):
            assert name in out
        assert "graph1MW_6.txt" in out  # paper inputs shown


class TestProfile:
    def test_profile_modes_sections(self, capsys):
        code = main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "### RD_mode" in out
        assert "### MD_mode" in out
        assert "### BD_mode" in out
        assert "### advice" in out
        assert "### overhead" not in out

    def test_profile_with_overhead(self, capsys):
        assert main(["profile", "nn", "--modes", "memory"]) == 0
        out = capsys.readouterr().out
        assert "### overhead" in out
        assert "x cycles" in out

    def test_unknown_app_rejected(self, capsys):
        assert main(["profile", "doom"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown app 'doom'")
        assert "Traceback" not in err

    def test_unknown_backend_rejected(self, capsys):
        assert main(["profile", "nn", "--backend", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown backend 'warp-drive'")

    def test_unknown_mode_rejected(self, capsys):
        assert main(["profile", "nn", "--modes", "memory,quantum"]) == 2
        assert "unknown analysis mode 'quantum'" in capsys.readouterr().err

    def test_conflicting_spill_knobs_rejected(self, capsys):
        assert main(["profile", "nn", "--spill-rows", "128"]) == 2
        assert "--spill-rows needs --spill-dir" in capsys.readouterr().err

    def test_bad_sample_rate_rejected(self, capsys):
        assert main(["profile", "nn", "--sample-rate", "0"]) == 2
        assert "--sample-rate must be >= 1" in capsys.readouterr().err

    def test_bad_workers_rejected(self, capsys):
        assert main(["profile", "nn", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_failure_policy_flag(self, capsys):
        assert main([
            "profile", "nn", "--modes", "memory", "--no-overhead",
            "--failure-policy", "strict",
        ]) == 0
        assert "### advice" in capsys.readouterr().out

    def test_repro_errors_are_one_line(self, capsys, monkeypatch):
        from repro.errors import LaunchError

        def boom(*args, **kwargs):
            raise LaunchError("device exploded")

        monkeypatch.setattr("repro.cli.CUDAAdvisor.profile", boom)
        assert main(["profile", "nn"]) == 1
        err = capsys.readouterr().err
        assert err == "error: device exploded\n"


class TestPTX:
    def test_ptx_dump(self, capsys):
        assert main(["ptx", "nn", "--cc", "6.0"]) == 0
        out = capsys.readouterr().out
        assert ".target sm_60" in out
        assert ".visible .entry euclid(" in out


class TestJSON:
    def test_json_report_round_trips(self, capsys):
        import json

        assert main([
            "profile", "nn", "--modes", "memory,blocks", "--no-overhead",
            "--json",
        ]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["program"] == "nn"
        assert data["arch"]["chip"] == "Tesla K40c"
        assert 0 <= data["reuse_element"]["no_reuse_fraction"] <= 1
        assert data["branch_divergence"]["total_blocks"] > 0
        assert data["bypass_prediction"]["warps_per_cta"] == 8
        assert isinstance(data["advice"], list) and data["advice"]


class TestInstrument:
    def test_dumps_instrumented_ir(self, capsys):
        assert main(["instrument", "nn", "--modes", "memory,blocks"]) == 0
        out = capsys.readouterr().out
        assert "call void @Record(i8* " in out
        assert "call void @passBasicBlock(" in out
        assert "define kernel void @euclid(" in out

    def test_no_optimize_keeps_allocas(self, capsys):
        assert main(["instrument", "nn", "--no-optimize"]) == 0
        out = capsys.readouterr().out
        assert "alloca" in out


class TestStatisticsSection:
    def test_multi_instance_stats_shown(self, capsys):
        assert main([
            "profile", "srad_v2", "--modes", "memory", "--no-overhead",
        ]) == 0
        out = capsys.readouterr().out
        assert "### per-call-path statistics" in out
        assert "srad_cuda_1" in out
        assert "srad_cuda_2" in out
