"""Tests for the host runtime: allocation tracking, memcpy interposition,
launch plumbing and the data-centric records it produces."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime, MemcpyKind, host_function
from repro.host.allocator import HOST_BASE, HostAllocator
from repro.profiler import ProfilingSession


class TestHostAllocator:
    def test_malloc_zeroes_and_tracks(self):
        alloc = HostAllocator()
        buf = alloc.malloc(16, np.float32, "a")
        assert buf.array.shape == (16,)
        assert (buf.array == 0).all()
        assert buf.addr >= HOST_BASE
        assert alloc.find(buf.addr + 8) is buf

    def test_wrap_adopts_array(self):
        alloc = HostAllocator()
        data = np.arange(8, dtype=np.int32)
        buf = alloc.wrap(data, "b")
        assert buf.array is data
        assert buf.nbytes == 32

    def test_distinct_address_ranges(self):
        alloc = HostAllocator()
        a = alloc.malloc(100, np.uint8)
        b = alloc.malloc(100, np.uint8)
        assert a.end <= b.addr

    def test_call_path_snapshot(self):
        alloc = HostAllocator()

        @host_function
        def allocate():
            return alloc.malloc(4, np.float32)

        buf = allocate()
        assert [f.function for f in buf.call_path][-1] == "allocate"


class TestCudaRuntime:
    def _rt(self, profiler=None):
        return CudaRuntime(Device(KEPLER_K40C), profiler=profiler)

    def test_cuda_malloc_records(self):
        rt = self._rt()
        d = rt.cuda_malloc(256, "d_x")
        assert rt.device_allocations[0].name == "d_x"
        assert rt.find_device_allocation(d.addr + 5) is not None
        assert rt.find_device_allocation(d.addr - 1) is None

    def test_memcpy_roundtrip_with_records(self):
        rt = self._rt()
        h = rt.host_malloc(8, np.float32, "h")
        h.array[:] = np.arange(8)
        d = rt.cuda_malloc(32, "d")
        rt.cuda_memcpy_htod(d, h)
        back = rt.host_malloc(8, np.float32, "h2")
        rt.cuda_memcpy_dtoh(back, d)
        assert np.array_equal(back.array, h.array)
        kinds = [r.kind for r in rt.memcpys]
        assert kinds == [MemcpyKind.HOST_TO_DEVICE, MemcpyKind.DEVICE_TO_HOST]
        assert rt.memcpys[0].nbytes == 32
        assert rt.memcpys[0].host_addr == h.addr
        assert rt.memcpys[0].device_addr == d.addr

    def test_memcpy_overflow_rejected(self):
        rt = self._rt()
        d = rt.cuda_malloc(16)
        with pytest.raises(LaunchError, match="memcpy"):
            rt.cuda_memcpy_htod(d, np.zeros(64, dtype=np.float32))

    def test_raw_ndarray_memcpy(self):
        rt = self._rt()
        d = rt.cuda_malloc(64)
        rt.cuda_memcpy_htod(d, np.arange(16, dtype=np.int32))
        out = np.zeros(16, dtype=np.int32)
        rt.cuda_memcpy_dtoh(out, d)
        assert np.array_equal(out, np.arange(16))
        # Raw arrays carry no host address: recorded as 0.
        assert rt.memcpys[0].host_addr == 0

    def test_profiler_receives_all_events(self):
        session = ProfilingSession()
        rt = self._rt(profiler=session)
        h = rt.host_malloc(4, np.float32, "h")
        d = rt.cuda_malloc(16, "d")
        rt.cuda_memcpy_htod(d, h)
        assert len(session.host_buffers) == 1
        assert len(session.device_allocations) == 1
        assert len(session.memcpys) == 1

    def test_pointer_offset(self):
        rt = self._rt()
        d = rt.cuda_malloc(256, "d")
        sub = d.offset(64)
        assert sub.addr == d.addr + 64
        assert sub.nbytes == 192
        with pytest.raises(LaunchError):
            d.offset(1000)

    def test_cuda_free(self):
        rt = self._rt()
        d = rt.cuda_malloc(64)
        rt.cuda_free(d)
        from repro.errors import MemoryError_

        with pytest.raises(MemoryError_):
            rt.cuda_free(d)
