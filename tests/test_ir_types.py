"""Unit tests for the IR type system."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir.types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    VoidType,
    BOOL,
    F32,
    F64,
    I8,
    I32,
    I64,
    VOID,
    parse_type,
    ptr,
)


class TestInterning:
    def test_structural_equality(self):
        assert IntType(32) == I32
        assert FloatType(32) == F32
        assert IntType(32) != IntType(64)
        assert IntType(32) != FloatType(32)

    def test_hashable(self):
        table = {I32: "a", F32: "b", ptr(F32): "c"}
        assert table[IntType(32)] == "a"
        assert table[PointerType(FloatType(32))] == "c"

    def test_pointer_equality_includes_addrspace(self):
        assert ptr(F32) != ptr(F32, AddressSpace.SHARED)
        assert ptr(F32, AddressSpace.SHARED) == ptr(F32, AddressSpace.SHARED)


class TestClassification:
    def test_predicates(self):
        assert I32.is_int and not I32.is_float and not I32.is_pointer
        assert F64.is_float and not F64.is_int
        assert ptr(I8).is_pointer
        assert VOID.is_void
        assert BOOL.is_bool and BOOL.is_int
        assert not I8.is_bool

    def test_sizes(self):
        assert I8.size_bytes() == 1
        assert I32.size_bytes() == 4
        assert I64.size_bytes() == 8
        assert F32.size_bytes() == 4
        assert F64.size_bytes() == 8
        assert BOOL.size_bytes() == 1
        assert ptr(F32).size_bytes() == 8
        assert I32.size_bits() == 32

    def test_void_has_no_size(self):
        with pytest.raises(IRError):
            VOID.size_bytes()

    def test_numpy_dtypes(self):
        assert I32.numpy_dtype() == np.dtype(np.int32)
        assert F32.numpy_dtype() == np.dtype(np.float32)
        assert BOOL.numpy_dtype() == np.dtype(np.bool_)
        assert ptr(F32).numpy_dtype() == np.dtype(np.int64)


class TestValidation:
    def test_bad_widths_rejected(self):
        with pytest.raises(IRError):
            IntType(24)
        with pytest.raises(IRError):
            FloatType(16)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(IRError):
            ptr(VOID)


class TestPrintParse:
    @pytest.mark.parametrize(
        "t", [I8, I32, I64, F32, F64, VOID, BOOL, ptr(F32), ptr(I32),
              ptr(F32, AddressSpace.SHARED), ptr(I8, AddressSpace.CONSTANT),
              ptr(ptr(F32))]
    )
    def test_roundtrip(self, t):
        assert parse_type(str(t)) == t

    def test_parse_rejects_garbage(self):
        with pytest.raises(IRError):
            parse_type("i33")
        with pytest.raises(IRError):
            parse_type("banana")
