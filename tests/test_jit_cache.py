"""The per-kernel JIT trace cache: repeat launches of the same module
must hit the specialization cache, identical modules must share decoded
streams, and the counters must surface in the profiler report and the
CLI's --verbose output."""

import numpy as np

from repro.cli import main
from repro.analysis.report import render_jit_cache
from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.gpu.jit_cache import build_spec
from repro.host import CudaRuntime
from repro.passes import optimization_pipeline
from tests.conftest import KERNELS


def _batched_runtime():
    device = Device(KEPLER_K40C)
    device.backend = "batched"
    return device, CudaRuntime(device)


def _saxpy_image(device):
    module = compile_kernels([KERNELS["saxpy"]], "m")
    optimization_pipeline().run(module)
    return device.load_module(module)


def _launch_saxpy(runtime, image, n=128):
    d = runtime.cuda_malloc(4 * n, "d")
    runtime.launch_kernel(image, "saxpy", 2, 64, [d, d, np.float32(2.0), n])


def test_second_launch_is_a_cache_hit():
    device, runtime = _batched_runtime()
    image = _saxpy_image(device)
    _launch_saxpy(runtime, image)
    stats = device.jit_cache.stats
    assert stats.misses == 1
    assert stats.specializations == 1
    assert stats.hits == 0
    _launch_saxpy(runtime, image)
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.specializations == 1  # spec built exactly once


def test_reloaded_identical_module_reuses_decode_and_spec():
    device, runtime = _batched_runtime()
    image1 = _saxpy_image(device)
    image2 = _saxpy_image(device)  # same IR text, separate image
    assert device.jit_cache.stats.decode_reuses == 1
    assert image2.decoded is image1.decoded
    _launch_saxpy(runtime, image1)
    _launch_saxpy(runtime, image2)
    stats = device.jit_cache.stats
    assert stats.hits == 1  # image2's launch reuses image1's spec
    assert stats.specializations == 1


def test_interpreter_backend_does_not_specialize():
    device = Device(KEPLER_K40C)
    runtime = CudaRuntime(device)
    image = _saxpy_image(device)
    _launch_saxpy(runtime, image)
    assert device.jit_cache.stats.specializations == 0
    assert device.jit_cache.stats.hits == 0


def test_build_spec_measures_pure_runs():
    device, _ = _batched_runtime()
    image = _saxpy_image(device)
    spec = build_spec(image.decoded, "saxpy")
    assert spec  # one entry per reachable block
    for rows in spec.values():
        for k, (handler, op, run) in enumerate(rows):
            if run:
                # A run of length r starting here means r pure ops ahead.
                assert all(r[0] is not None for r in rows[k:k + run])


def test_advisor_report_carries_jit_stats():
    from repro.apps import build_app
    from repro.optim.advisor import CUDAAdvisor

    advisor = CUDAAdvisor(modes=("memory",), measure_overhead=False,
                          backend="batched")
    report = advisor.profile(build_app("nn"))
    assert report.jit_cache is not None
    assert report.jit_cache["specializations"] >= 1
    assert "jit_cache" in report.to_dict()

    interp = CUDAAdvisor(modes=("memory",), measure_overhead=False)
    assert interp.profile(build_app("nn")).jit_cache is None


def test_render_jit_cache_formats_counters():
    text = render_jit_cache(
        "nn", {"hits": 3, "misses": 1, "specializations": 1,
               "decode_reuses": 2},
    )
    assert "JIT trace cache -- nn" in text
    assert "75%" in text  # 3 hits / 4 lookups


def test_cli_verbose_prints_jit_section(capsys):
    code = main([
        "profile", "nn", "--modes", "memory", "--no-overhead",
        "--backend", "batched", "--verbose",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "### jit trace cache" in out
    assert "hit rate" in out


def test_cli_quiet_omits_jit_section(capsys):
    code = main([
        "profile", "nn", "--modes", "memory", "--no-overhead",
        "--backend", "batched",
    ])
    assert code == 0
    assert "### jit trace cache" not in capsys.readouterr().out
