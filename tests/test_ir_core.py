"""Unit tests for IR values, instructions, modules and the builder."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BOOL,
    BasicBlock,
    Constant,
    DebugLoc,
    F32,
    Function,
    I32,
    IRBuilder,
    Module,
    VOID,
    ptr,
)
from repro.ir.instructions import (
    AtomicOp,
    CacheOp,
    CmpPred,
    Load,
    Opcode,
    Store,
)
from repro.ir.module import link_modules


class TestConstants:
    def test_int_wrapping(self):
        c = Constant(I32, 2**31)
        assert c.value == -(2**31)
        assert Constant(I32, -1).value == -1

    def test_bool(self):
        assert Constant(BOOL, 3).value is True
        assert Constant(BOOL, 0).value is False
        assert Constant(BOOL, True).ref() == "true"

    def test_float(self):
        assert Constant(F32, 1).value == 1.0
        assert isinstance(Constant(F32, 1).value, float)

    def test_equality(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I32, 6)
        assert Constant(I32, 5) != Constant(F32, 5)


def _make_fn():
    m = Module("m", target="nvptx")
    fn = m.add_function("f", VOID, [(ptr(F32), "p"), (I32, "n")], kind="kernel")
    return m, fn


class TestModuleStructure:
    def test_duplicate_function_rejected(self):
        m, _ = _make_fn()
        with pytest.raises(IRError):
            m.add_function("f", VOID, [], kind="kernel")

    def test_declare_is_idempotent(self):
        m, _ = _make_fn()
        a = m.declare_function("hook", VOID, [(I32, "x")], kind="hook")
        b = m.declare_function("hook", VOID, [(I32, "x")], kind="hook")
        assert a is b

    def test_declare_conflict_rejected(self):
        m, _ = _make_fn()
        m.declare_function("hook", VOID, [(I32, "x")], kind="hook")
        with pytest.raises(IRError):
            m.declare_function("hook", VOID, [(F32, "x")], kind="hook")

    def test_kernels_listing(self):
        m, fn = _make_fn()
        m.add_function("helper", F32, [(F32, "x")], kind="device")
        assert m.kernels() == [fn]

    def test_string_interning(self):
        m, _ = _make_fn()
        s1 = m.add_string("hello")
        s2 = m.add_string("hello")
        s3 = m.add_string("world")
        assert s1 is s2
        assert s1 is not s3

    def test_unique_value_names(self):
        _, fn = _make_fn()
        a = fn.unique_value_name("x")
        b = fn.unique_value_name("x")
        assert a != b


class TestBuilder:
    def test_basic_arithmetic_types(self):
        m, fn = _make_fn()
        entry = fn.add_block("entry")
        b = IRBuilder.at_end(entry)
        s = b.add(b.i32(1), b.i32(2))
        assert s.type == I32
        f = b.fmul(b.f32(2.0), b.f32(3.0))
        assert f.type == F32
        c = b.icmp(CmpPred.LT, s, b.i32(10))
        assert c.type == BOOL

    def test_type_mismatch_rejected(self):
        m, fn = _make_fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        with pytest.raises(IRError):
            b.add(b.i32(1), b.f32(1.0))
        with pytest.raises(IRError):
            b.fadd(b.i32(1), b.i32(2))

    def test_store_type_checked(self):
        m, fn = _make_fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        with pytest.raises(IRError):
            b.store(b.i32(4), fn.args[0])  # f32* given an i32

    def test_call_arity_and_types_checked(self):
        m, fn = _make_fn()
        hook = m.declare_function("h", VOID, [(I32, "x")], kind="hook")
        b = IRBuilder.at_end(fn.add_block("entry"))
        with pytest.raises(IRError):
            b.call(hook, [])
        with pytest.raises(IRError):
            b.call(hook, [b.f32(1.0)])

    def test_terminator_seals_block(self):
        m, fn = _make_fn()
        entry = fn.add_block("entry")
        b = IRBuilder.at_end(entry)
        b.ret()
        with pytest.raises(IRError):
            b.add(b.i32(1), b.i32(1))

    def test_insert_before_anchors(self):
        m, fn = _make_fn()
        entry = fn.add_block("entry")
        b = IRBuilder.at_end(entry)
        gep = b.gep(fn.args[0], b.i32(0))
        load = b.load(gep)
        b.ret()
        before = IRBuilder.before(load)
        marker = before.add(before.i32(1), before.i32(2))
        names = [type(i).__name__ for i in entry.instructions]
        assert names.index("BinOp") < names.index("Load")
        assert marker.parent is entry

    def test_debug_loc_propagation(self):
        m, fn = _make_fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        b.set_loc(DebugLoc("f.py", 12, 3))
        inst = b.add(b.i32(1), b.i32(1))
        assert inst.debug_loc == DebugLoc("f.py", 12, 3)
        # IRBuilder.before inherits the anchor's location.
        b.ret()
        before = IRBuilder.before(inst)
        other = before.mul(before.i32(2), before.i32(2))
        assert other.debug_loc == DebugLoc("f.py", 12, 3)


class TestCacheOps:
    def test_default_cache_operator(self):
        m, fn = _make_fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        load = b.load(fn.args[0])
        assert load.cache_op == CacheOp.CACHE_ALL

    def test_explicit_cache_operator(self):
        m, fn = _make_fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        load = b.load(fn.args[0], cache_op=CacheOp.CACHE_GLOBAL)
        assert load.cache_op == CacheOp.CACHE_GLOBAL


class TestLinkModules:
    def test_definition_replaces_declaration(self):
        dest = Module("dest", target="nvptx")
        dest.declare_function("Record", VOID, [(I32, "x")], kind="hook")
        src = Module("hooks", target="nvptx")
        fn = src.add_function("Record", VOID, [(I32, "x")], kind="hook")
        fn.add_block("entry")
        IRBuilder.at_end(fn.entry).ret()
        link_modules(dest, src)
        assert not dest.get_function("Record").is_declaration

    def test_duplicate_definitions_rejected(self):
        a = Module("a", target="nvptx")
        fa = a.add_function("f", VOID, [], kind="device")
        IRBuilder.at_end(fa.add_block("entry")).ret()
        b = Module("b", target="nvptx")
        fb = b.add_function("f", VOID, [], kind="device")
        IRBuilder.at_end(fb.add_block("entry")).ret()
        with pytest.raises(IRError):
            link_modules(a, b)
