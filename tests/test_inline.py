"""Tests for the function-inlining pass."""

import numpy as np
import pytest

from repro.frontend import (
    compile_kernels,
    device,
    f32,
    i32,
    kernel,
    ptr_f32,
    ptr_i32,
)
from repro.gpu import Device, KEPLER_K40C
from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.passes import PassManager, optimization_pipeline
from repro.passes.inline import InlineFunctionsPass
from tests.conftest import KERNELS


def _device_calls(fn):
    return [
        i for i in fn.instructions()
        if isinstance(i, Call) and i.callee.kind == "device"
    ]


@device
def poly2(x: f32, a: f32, b: f32, c: f32) -> f32:
    return a * x * x + b * x + c


@device
def absdiff(a: i32, b: i32) -> i32:
    if a > b:
        return a - b
    return b - a


@kernel
def k_poly(xs: ptr_f32, out: ptr_f32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        out[gid] = poly2(xs[gid], 2.0, -3.0, 1.0)


@kernel
def k_absdiff_loop(data: ptr_i32, out: ptr_i32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        total = 0
        for i in range(4):
            total += absdiff(data[gid], i * 10)
        out[gid] = total


class TestInlining:
    def _inline(self, k, pipeline_first=True):
        module = compile_kernels([k], k.name)
        if pipeline_first:
            optimization_pipeline().run(module)
        changed = PassManager([InlineFunctionsPass()]).run(module)
        verify_module(module)
        return module

    def test_single_return_callee_inlined(self):
        module = self._inline(k_poly)
        fn = module.get_function("k_poly")
        assert not _device_calls(fn)

    def test_multi_return_callee_gets_phi(self):
        from repro.ir.instructions import Phi

        module = self._inline(k_absdiff_loop)
        fn = module.get_function("k_absdiff_loop")
        assert not _device_calls(fn)
        names = [b.name for b in fn.blocks]
        assert any(n.startswith("absdiff.exit") for n in names)
        exit_block = next(
            b for b in fn.blocks if b.name.startswith("absdiff.exit")
        )
        assert isinstance(exit_block.instructions[0], Phi)

    @pytest.mark.parametrize("k,ref", [
        (k_poly, lambda x: 2 * x * x - 3 * x + 1),
    ])
    def test_semantics_float(self, k, ref):
        module = self._inline(k)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        xs = np.linspace(-4, 4, 64, dtype=np.float32)
        dx = dev.malloc(xs.nbytes)
        do = dev.malloc(xs.nbytes)
        dev.memcpy_htod(dx, xs)
        dev.launch(img, k.name, 2, 32, [dx, do, 64])
        out = dev.memcpy_dtoh(do, np.float32, 64)
        assert np.allclose(out, ref(xs), rtol=1e-5)

    def test_semantics_divergent_multi_return(self):
        module = self._inline(k_absdiff_loop)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        data = np.arange(64, dtype=np.int32)
        di = dev.malloc(data.nbytes)
        do = dev.malloc(data.nbytes)
        dev.memcpy_htod(di, data)
        dev.launch(img, "k_absdiff_loop", 2, 32, [di, do, 64])
        out = dev.memcpy_dtoh(do, np.int32, 64)
        expected = [
            sum(abs(int(v) - i * 10) for i in range(4)) for v in data
        ]
        assert list(out) == expected

    def test_size_threshold_respected(self):
        module = compile_kernels([k_poly], "m")
        optimization_pipeline().run(module)
        changed = PassManager(
            [InlineFunctionsPass(max_callee_instructions=1)]
        ).run(module)
        fn = module.get_function("k_poly")
        assert _device_calls(fn)  # too big to inline at threshold 1

    def test_nested_calls_inline_transitively(self):
        module = compile_kernels([KERNELS["saxpy_clamped"]], "m")
        optimization_pipeline().run(module)
        PassManager([InlineFunctionsPass()]).run(module)
        verify_module(module)
        fn = module.get_function("saxpy_clamped")
        assert not _device_calls(fn)
        # Semantics spot-check.
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        x = np.full(32, 100.0, dtype=np.float32)
        dx = dev.malloc(x.nbytes)
        dy = dev.malloc(x.nbytes)
        dev.memcpy_htod(dx, x)
        dev.memcpy_htod(dy, x)
        dev.launch(img, "saxpy_clamped", 1, 32, [dx, dy, 2.0, 32])
        out = dev.memcpy_dtoh(dy, np.float32, 32)
        assert np.allclose(out, 10.0)  # clamped to hi

    def test_instruction_count_does_not_grow(self):
        """Inlining swaps call/ret for branches (count-neutral in the
        interpreter's accounting) and removes the frame push/pop; the
        executed instruction count must not grow."""
        plain = compile_kernels([KERNELS["saxpy_clamped"]], "a")
        optimization_pipeline().run(plain)
        inlined = compile_kernels([KERNELS["saxpy_clamped"]], "b")
        optimization_pipeline().run(inlined)
        PassManager([InlineFunctionsPass()]).run(inlined)

        counts = []
        for module in (plain, inlined):
            dev = Device(KEPLER_K40C)
            img = dev.load_module(module)
            dx = dev.malloc(4 * 64)
            dy = dev.malloc(4 * 64)
            result = dev.launch(img, "saxpy_clamped", 2, 32,
                                [dx, dy, 2.0, 64])
            counts.append(result.instructions)
        assert counts[1] <= counts[0]
