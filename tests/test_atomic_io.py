"""Atomic artifact publication: temp-file + os.replace everywhere.

The contract under test: a process killed at any point while publishing
an artifact (export document, spill segment, cache entry) leaves either
the old bytes, the new bytes, or nothing under the final name -- never
a truncated file.  The kill-mid-write tests fork a child whose
``os.replace`` is rerouted to ``os._exit`` (died after writing, before
publishing) and assert the target is unharmed.
"""

import json
import os

import pytest

from repro import ioutil
from repro.ioutil import atomic_write_bytes, atomic_write_text
from repro.reliability.spill import SpillConfig, read_segment, write_segment


def _no_stray_tmp(directory):
    return [n for n in os.listdir(directory) if n.startswith(".tmp-")]


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(str(target), "old\n")
        atomic_write_text(str(target), "new\n")
        assert target.read_text() == "new\n"
        assert _no_stray_tmp(tmp_path) == []

    def test_failed_write_keeps_old_and_cleans_tmp(self, tmp_path,
                                                   monkeypatch):
        target = tmp_path / "doc.json"
        atomic_write_text(str(target), "old\n")

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(ioutil.os, "replace", boom)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_text(str(target), "new\n")
        assert target.read_text() == "old\n"
        assert _no_stray_tmp(tmp_path) == []

    def _kill_mid_write(self, fn):
        """Run ``fn`` in a fork whose os.replace dies pre-publication."""
        pid = os.fork()
        if pid == 0:  # pragma: no cover -- child dies by design
            try:
                ioutil.os.replace = lambda src, dst: os._exit(21)
                fn()
            finally:
                os._exit(99)  # fn returned: replace was never reached?!
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 21

    def test_kill_mid_write_leaves_old_content(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(str(target), "old\n")
        self._kill_mid_write(
            lambda: atomic_write_text(str(target), "half-written garbage")
        )
        # the child died between writing and publishing: old bytes live
        assert target.read_text() == "old\n"

    def test_kill_mid_write_never_creates_target(self, tmp_path):
        target = tmp_path / "fresh.json"
        self._kill_mid_write(
            lambda: atomic_write_text(str(target), "data")
        )
        assert not target.exists()


class TestExportOutputAtomic:
    def test_cli_export_o_is_atomic(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "nn.json"
        out.write_text("precious old document")
        assert main(["export", "nn", "--no-overhead",
                     "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == "1.0"
        assert _no_stray_tmp(tmp_path) == []

    def test_cli_export_kill_mid_write_keeps_old(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "nn.json"
        out.write_text("precious old document")
        pid = os.fork()
        if pid == 0:  # pragma: no cover -- child dies by design
            try:
                ioutil.os.replace = lambda src, dst: os._exit(21)
                main(["export", "nn", "--no-overhead", "-o", str(out)])
            finally:
                os._exit(99)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 21
        assert out.read_text() == "precious old document"


class TestSpillSegmentAtomic:
    def test_segment_roundtrip_still_checks(self, tmp_path):
        config = SpillConfig(directory=str(tmp_path))
        path = write_segment(config, "memory", 0, {"rows": [1, 2, 3]},
                             rows=3)
        assert read_segment(path) == {"rows": [1, 2, 3]}
        assert _no_stray_tmp(tmp_path) == []

    def test_kill_mid_spill_leaves_no_torn_segment(self, tmp_path):
        config = SpillConfig(directory=str(tmp_path))
        pid = os.fork()
        if pid == 0:  # pragma: no cover -- child dies by design
            try:
                ioutil.os.replace = lambda src, dst: os._exit(21)
                write_segment(config, "memory", 0,
                              {"rows": list(range(1000))}, rows=1000)
            finally:
                os._exit(99)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 21
        # no *.seg file may exist -- the crash happened pre-publication
        assert [n for n in os.listdir(tmp_path) if n.endswith(".seg")] == []
