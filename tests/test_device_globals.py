"""Tests for module-level device globals (__device__ arrays) and the
constant-string arena."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.gpu import Device, KEPLER_K40C
from repro.ir import F32, I32, IRBuilder, Module, VOID, ptr, verify_module
from repro.ir.types import AddressSpace
from repro.ir.values import GlobalVariable


def _module_with_lut():
    m = Module("g", target="nvptx")
    lut = GlobalVariable("lut", F32, 4, AddressSpace.GLOBAL,
                         initializer=[1.5, 2.5, 3.5, 4.5])
    m.add_global(lut)
    fn = m.add_function("k", VOID, [(ptr(F32), "out")], kind="kernel")
    b = IRBuilder.at_end(fn.add_block("entry"))
    tid = m.declare_function("nvvm.tid.x", I32, [], kind="intrinsic")
    lane = b.call(tid, [], "lane")
    idx = b.srem(lane, b.i32(4), "idx")
    src = b.gep(lut, idx)
    v = b.load(src)
    dst = b.gep(fn.args[0], lane)
    b.store(v, dst)
    b.ret()
    verify_module(m)
    return m


class TestDeviceGlobals:
    def test_initialized_global_readable(self):
        dev = Device(KEPLER_K40C)
        img = dev.load_module(_module_with_lut())
        out = dev.malloc(4 * 32)
        dev.launch(img, "k", 1, 32, [out])
        data = dev.memcpy_dtoh(out, np.float32, 32)
        expected = np.tile([1.5, 2.5, 3.5, 4.5], 8).astype(np.float32)
        assert np.array_equal(data, expected)

    def test_global_gets_real_device_address(self):
        dev = Device(KEPLER_K40C)
        img = dev.load_module(_module_with_lut())
        lut = img.module.globals["lut"]
        addr = img.address_of(lut)
        raw = dev.memory.read_bytes(addr, 16).view(np.float32)
        assert np.array_equal(raw, [1.5, 2.5, 3.5, 4.5])


class TestConstantArena:
    def test_string_lookup(self):
        m = _module_with_lut()
        s = m.add_string("hello:world")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(m)
        addr = img.address_of(s)
        assert img.string_at(addr) == "hello:world"
        # Offsets into the string resolve to its suffix.
        assert img.string_at(addr + 6) == "world"

    def test_unknown_address_rejected(self):
        dev = Device(KEPLER_K40C)
        img = dev.load_module(_module_with_lut())
        with pytest.raises(ExecutionError, match="no constant string"):
            img.string_at(0x7FFFFFFF)
