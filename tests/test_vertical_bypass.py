"""Tests for per-site reuse analysis and vertical cache bypassing."""

import numpy as np
import pytest

from repro.analysis.reuse_distance import (
    ReuseDistanceModel,
    site_reuse_analysis,
)
from repro.frontend import compile_kernels, f32, i32, kernel, ptr_f32
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.ir.instructions import CacheOp, Load
from repro.passes import (
    VerticalBypassPass,
    instrumentation_pipeline,
    optimization_pipeline,
    plan_vertical_bypass,
)
from repro.profiler import ProfilingSession


@kernel
def mixed_reuse(stream_in: ptr_f32, table: ptr_f32, out: ptr_f32, n: i32):
    """One streaming load (each element read once) and one hot load
    (a tiny table re-read every iteration)."""
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        acc = 0.0
        for i in range(4):
            acc += stream_in[gid * 4 + i] * table[i]
        out[gid] = acc


def _profile_mixed(n=512):
    module = compile_kernels([mixed_reuse], "m")
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory"]).run(module)
    session = ProfilingSession()
    dev = Device(KEPLER_K40C)
    rt = CudaRuntime(dev, profiler=session)
    image = dev.load_module(module)
    data = np.arange(4 * n, dtype=np.float32)
    table = np.array([1, 2, 3, 4], dtype=np.float32)
    d_in = rt.cuda_malloc(data.nbytes, "d_in")
    d_tab = rt.cuda_malloc(table.nbytes, "d_tab")
    d_out = rt.cuda_malloc(4 * n, "d_out")
    rt.cuda_memcpy_htod(d_in, data)
    rt.cuda_memcpy_htod(d_tab, table)
    rt.launch_kernel(image, "mixed_reuse", n // 64, 64,
                     [d_in, d_tab, d_out, n])
    return session.last_profile


class TestSiteReuseAnalysis:
    def test_sites_separated(self):
        profile = _profile_mixed()
        sites = site_reuse_analysis(profile)
        # At least: streaming load, table load, output store is a write
        # (no samples) -> two read sites.
        read_sites = {s: h for s, h in sites.items() if h.samples}
        assert len(read_sites) >= 2
        fractions = sorted(
            h.no_reuse_fraction for h in read_sites.values()
        )
        # The table site is heavily reused, the stream site is not.
        assert fractions[0] < 0.2
        assert fractions[-1] > 0.8

    def test_sample_conservation(self):
        profile = _profile_mixed()
        sites = site_reuse_analysis(profile)
        total = sum(h.samples for h in sites.values())
        # One sample per active load lane.
        expected = sum(
            r.active_lanes for r in profile.memory_records
            if r.op.value == 1
        )
        assert total == expected


class TestPlan:
    def test_plan_picks_streaming_sites_only(self):
        profile = _profile_mixed()
        sites = site_reuse_analysis(profile)
        plan = plan_vertical_bypass(sites, no_reuse_threshold=0.7)
        assert len(plan) >= 1
        for site in plan:
            assert sites[site].no_reuse_fraction >= 0.7

    def test_min_samples_filter(self):
        profile = _profile_mixed()
        sites = site_reuse_analysis(profile)
        huge = max(h.samples for h in sites.values())
        plan = plan_vertical_bypass(sites, min_samples=huge + 1)
        assert plan == set()


class TestVerticalBypassPass:
    def test_rewrites_only_selected_sites(self):
        module = compile_kernels([mixed_reuse], "m")
        optimization_pipeline().run(module)
        fn = module.get_function("mixed_reuse")
        loads = [i for i in fn.instructions() if isinstance(i, Load)
                 and i.pointer.type.addrspace.value == 1]
        target = (loads[0].debug_loc.line, loads[0].debug_loc.col)
        VerticalBypassPass({target}).run(module)
        for load in loads:
            site = (load.debug_loc.line, load.debug_loc.col)
            expected = (
                CacheOp.CACHE_GLOBAL if site == target else CacheOp.CACHE_ALL
            )
            assert load.cache_op == expected

    def test_semantics_preserved_and_bypasses_counted(self):
        profile = _profile_mixed()
        sites = site_reuse_analysis(profile)
        plan = plan_vertical_bypass(sites)
        assert plan

        module = compile_kernels([mixed_reuse], "m2")
        optimization_pipeline().run(module)
        VerticalBypassPass(plan).run(module)
        dev = Device(KEPLER_K40C)
        image = dev.load_module(module)
        n = 256
        data = np.arange(4 * n, dtype=np.float32)
        table = np.array([1, 2, 3, 4], dtype=np.float32)
        d_in = dev.malloc(data.nbytes)
        d_tab = dev.malloc(table.nbytes)
        d_out = dev.malloc(4 * n)
        dev.memcpy_htod(d_in, data)
        dev.memcpy_htod(d_tab, table)
        result = dev.launch(image, "mixed_reuse", n // 64, 64,
                            [d_in, d_tab, d_out, n])
        out = dev.memcpy_dtoh(d_out, np.float32, n)
        expected = (data.reshape(n, 4) * table).sum(axis=1)
        assert np.allclose(out, expected)
        assert result.cache.bypassed > 0  # streaming loads went .cg
