"""Tests for the architecture descriptors (Table 1) and text reports."""

import pytest

from repro.analysis.divergence_branch import BranchDivergenceProfile
from repro.analysis.divergence_memory import MemoryDivergenceProfile
from repro.analysis.overhead import OverheadReport
from repro.analysis.report import (
    render_branch_table,
    render_bypass_table,
    render_divergence_distribution,
    render_reuse_histogram,
)
from repro.analysis.reuse_distance import (
    ReuseDistanceHistogram,
    ReuseDistanceModel,
)
from repro.gpu.arch import KEPLER_K40C, PASCAL_P100, kepler_with_l1
from repro.profiler.records import BlockRecord


class TestTable1:
    def test_kepler_descriptor(self):
        assert KEPLER_K40C.chip == "Tesla K40c"
        assert KEPLER_K40C.compute_capability == "3.5"
        assert KEPLER_K40C.cuda_version == "7.0"
        assert KEPLER_K40C.driver_version == "361.93"
        assert KEPLER_K40C.l1_line_size == 128
        assert KEPLER_K40C.num_sms == 15
        assert not KEPLER_K40C.l1_write_allocate

    def test_pascal_descriptor(self):
        assert PASCAL_P100.chip == "Tesla P100"
        assert PASCAL_P100.compute_capability == "6.0"
        assert PASCAL_P100.cuda_version == "8.0"
        assert PASCAL_P100.driver_version == "375.20"
        assert PASCAL_P100.l1_line_size == 32  # 32B sectors
        assert PASCAL_P100.l1_size == 24 * 1024  # unified L1/Tex

    def test_kepler_l1_configurations(self):
        """Kepler's L1/shared split: 16, 32 or 48 KB."""
        assert kepler_with_l1(16).l1_size == 16 * 1024
        assert kepler_with_l1(32).l1_size == 32 * 1024
        assert kepler_with_l1(48).l1_size == 48 * 1024
        with pytest.raises(ValueError):
            kepler_with_l1(24)

    def test_derived_geometry(self):
        assert KEPLER_K40C.l1_num_lines == 128
        assert KEPLER_K40C.l1_num_sets == 32
        resized = KEPLER_K40C.with_l1_size(4096)
        assert resized.l1_num_lines == 32
        assert KEPLER_K40C.l1_size == 16 * 1024  # frozen original


class TestReports:
    def test_reuse_histogram_rendering(self):
        h = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        for d in (0, 0, 5, 600, -1):
            h.add_sample(d)
        text = render_reuse_histogram("syrk", h)
        assert "syrk" in text
        assert ">512" in text
        assert "inf" in text
        assert "40.0%" in text  # two of five samples at distance 0

    def test_divergence_rendering(self):
        md = MemoryDivergenceProfile(line_size=128)
        md.add(1)
        md.add(32)
        text = render_divergence_distribution("bicg", md)
        assert "bicg" in text
        assert "degree = 16.50" in text
        assert "32 lines" in text

    def test_branch_table_rendering(self):
        def make(div, total):
            p = BranchDivergenceProfile()
            for i in range(total):
                p.add(BlockRecord(
                    seq=i, cta=0, warp_in_cta=0, block_name="k:b",
                    line=1, col=1,
                    active_lanes=(1 if i < div else 32),
                    resident_lanes=32, call_path_id=0,
                ))
            return p

        text = render_branch_table({"nw": make(7, 10), "bicg": make(0, 4)})
        assert "nw" in text and "bicg" in text
        assert "70.00%" in text
        assert "0.00%" in text

    def test_bypass_table_rendering(self):
        text = render_bypass_table(
            "Kepler 16KB",
            [("syrk", 0.63, 0.63, 1, 1), ("bfs", 1.0, 1.05, 16, 1)],
        )
        assert "Kepler 16KB" in text
        assert "syrk" in text

    def test_overhead_report(self):
        class R:
            def __init__(self, cycles, instructions, wall):
                self.cycles = cycles
                self.instructions = instructions
                self.wall_seconds = wall

        report = OverheadReport(
            app="syrk", arch="Kepler", modes=("memory",),
            baseline_cycles=100, instrumented_cycles=4200,
            baseline_instructions=10, instrumented_instructions=35,
            baseline_wall=1.0, instrumented_wall=3.0,
        )
        assert report.cycle_overhead == pytest.approx(42.0)
        assert report.instruction_overhead == pytest.approx(3.5)
        assert report.wall_overhead == pytest.approx(3.0)
        assert "42.0x" in report.render()
