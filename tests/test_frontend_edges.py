"""Additional frontend edge cases and rejection paths."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.frontend import (
    compile_kernels,
    f32,
    i32,
    kernel,
    ptr_f32,
    ptr_i32,
)
from repro.gpu import Device, KEPLER_K40C

CAPTURED_SIZE = 48  # captured module-level constant
CAPTURED_SCALE = 2.5


def _run(k, out_count, args, dtype=np.int32, block=32):
    module = compile_kernels([k], k.name)
    dev = Device(KEPLER_K40C)
    img = dev.load_module(module)
    out = dev.malloc(int(np.dtype(dtype).itemsize) * out_count)
    dev.launch(img, k.name, 1, block, [out] + list(args))
    return dev.memcpy_dtoh(out, dtype, out_count)


class TestCapturedConstants:
    def test_int_and_float_capture(self):
        @kernel
        def k(out: ptr_f32):
            t = tid_x
            if t == 0:
                out[0] = CAPTURED_SIZE * CAPTURED_SCALE

        out = _run(k, 1, [], dtype=np.float32)
        assert out[0] == pytest.approx(48 * 2.5)

    def test_captured_constant_in_shared_size(self):
        @kernel
        def k(out: ptr_f32):
            tile = shared(f32, CAPTURED_SIZE)
            t = tid_x
            tile[t] = float(t)
            syncthreads()
            out[t] = tile[(t + 1) % CAPTURED_SIZE]

        module = compile_kernels([k], "m")
        assert module.globals["k.tile"].count == CAPTURED_SIZE


class TestLocalArrays:
    def test_local_array_roundtrip(self):
        @kernel
        def k(out: ptr_i32):
            buf = local(i32, 8)
            t = tid_x
            for i in range(8):
                buf[i] = t * 10 + i
            acc = 0
            for i in range(8):
                acc += buf[i]
            out[t] = acc

        out = _run(k, 32, [])
        expected = [sum(t * 10 + i for i in range(8)) for t in range(32)]
        assert list(out) == expected


class TestAnnAssign:
    def test_annotated_declaration(self):
        @kernel
        def k(out: ptr_f32):
            t = tid_x
            x: f32 = t  # explicit widening declaration
            out[t] = x * 0.5

        out = _run(k, 32, [], dtype=np.float32)
        assert np.allclose(out, np.arange(32) * 0.5)

    def test_annotated_declaration_without_value_rejected(self):
        def bad(out: ptr_f32):  # pragma: no cover
            x: f32

        with pytest.raises(FrontendError, match="initializer"):
            compile_kernels([kernel(bad)], "bad")


class TestRejections:
    def test_float_to_int_narrowing_rejected(self):
        def bad(out: ptr_i32):  # pragma: no cover
            out[0] = 1.5

        with pytest.raises(FrontendError, match="int"):
            compile_kernels([kernel(bad)], "bad")

    def test_reassigning_array_rejected(self):
        def bad(x: ptr_f32, y: ptr_f32):  # pragma: no cover
            x = y

        with pytest.raises(FrontendError, match="reassign"):
            compile_kernels([kernel(bad)], "bad")

    def test_assign_to_builtin_rejected(self):
        def bad(out: ptr_i32):  # pragma: no cover
            tid_x = 4  # noqa: F841

        with pytest.raises(FrontendError, match="builtin"):
            compile_kernels([kernel(bad)], "bad")

    def test_shared_in_expression_rejected(self):
        def bad(out: ptr_f32):  # pragma: no cover
            out[0] = shared(f32, 8)[0]

        with pytest.raises(FrontendError, match="shared"):
            compile_kernels([kernel(bad)], "bad")

    def test_non_range_for_rejected(self):
        def bad(out: ptr_i32):  # pragma: no cover
            for x in (1, 2, 3):
                out[0] = x

        with pytest.raises(FrontendError, match="range"):
            compile_kernels([kernel(bad)], "bad")

    def test_chained_comparison_rejected(self):
        def bad(out: ptr_i32, n: i32):  # pragma: no cover
            if 0 < n < 10:
                out[0] = 1

        with pytest.raises(FrontendError, match="chained comparisons"):
            compile_kernels([kernel(bad)], "bad")

    def test_indexing_scalar_rejected(self):
        def bad(out: ptr_i32, n: i32):  # pragma: no cover
            out[0] = n[0]

        with pytest.raises(FrontendError, match="pointer"):
            compile_kernels([kernel(bad)], "bad")

    def test_keyword_arguments_rejected(self):
        def bad(out: ptr_f32):  # pragma: no cover
            out[0] = fminf(a=1.0, b=2.0)

        with pytest.raises(FrontendError, match="keyword"):
            compile_kernels([kernel(bad)], "bad")

    def test_while_else_rejected(self):
        def bad(out: ptr_i32):  # pragma: no cover
            i = 0
            while i < 3:
                i += 1
            else:
                out[0] = i

        with pytest.raises(FrontendError, match="while/else"):
            compile_kernels([kernel(bad)], "bad")
