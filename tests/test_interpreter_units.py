"""Instruction-level interpreter tests on hand-built IR.

Covers opcodes and types the DSL does not emit (unsigned ops, logical
shifts, i64 arithmetic, selects, float remainders) by constructing
kernels directly with the IRBuilder and executing them.
"""

import numpy as np
import pytest

from repro.gpu import Device, KEPLER_K40C
from repro.ir import (
    BOOL,
    F32,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    verify_module,
    ptr,
)
from repro.ir.instructions import CastKind, CmpPred, Opcode


def _harness(result_type, emit):
    """Build ``kernel k(out*) { out[lane] = emit(builder, lane) }``."""
    m = Module("unit", target="nvptx")
    fn = m.add_function("k", VOID, [(ptr(result_type), "out")], kind="kernel")
    b = IRBuilder.at_end(fn.add_block("entry"))
    tid = m.declare_function("nvvm.tid.x", I32, [], kind="intrinsic")
    lane = b.call(tid, [], "lane")
    value = emit(b, lane)
    slot = b.gep(fn.args[0], lane)
    b.store(value, slot)
    b.ret()
    verify_module(m)
    return m


def _run(result_type, emit):
    m = _harness(result_type, emit)
    dev = Device(KEPLER_K40C)
    img = dev.load_module(m)
    out = dev.malloc(32 * result_type.size_bytes())
    dev.launch(img, "k", 1, 32, [out])
    return dev.memcpy_dtoh(out, result_type.numpy_dtype(), 32)


lanes = np.arange(32, dtype=np.int64)


class TestIntegerOpcodes:
    def test_udiv_urem(self):
        def emit(b, lane):
            x = b.sub(lane, b.i32(16), "x")  # negative for low lanes
            q = b.binop(Opcode.UDIV, x, b.i32(3), "q")
            r = b.binop(Opcode.UREM, x, b.i32(3), "r")
            return b.add(q, r)

        out = _run(I32, emit)
        xs = (lanes - 16).astype(np.int64) & 0xFFFFFFFF  # as unsigned
        expected = ((xs // 3) + (xs % 3)).astype(np.int64)
        expected = ((expected + 2**31) % 2**32 - 2**31).astype(np.int32)
        assert np.array_equal(out, expected)

    def test_lshr_vs_ashr(self):
        def emit_l(b, lane):
            x = b.sub(b.i32(0), lane, "neg")
            return b.binop(Opcode.LSHR, x, b.i32(4))

        def emit_a(b, lane):
            x = b.sub(b.i32(0), lane, "neg")
            return b.binop(Opcode.ASHR, x, b.i32(4))

        logical = _run(I32, emit_l)
        arithmetic = _run(I32, emit_a)
        neg = (-lanes).astype(np.int32)
        assert np.array_equal(
            logical, ((neg.astype(np.int64) & 0xFFFFFFFF) >> 4)
            .astype(np.int32)
        )
        assert np.array_equal(arithmetic, neg >> 4)

    def test_smin_smax(self):
        def emit(b, lane):
            lo = b.binop(Opcode.SMIN, lane, b.i32(10))
            return b.binop(Opcode.SMAX, lo, b.i32(5))

        out = _run(I32, emit)
        assert np.array_equal(out, np.clip(lanes, 5, 10).astype(np.int32))

    def test_i64_arithmetic(self):
        def emit(b, lane):
            wide = b.sext(lane, I64, "wide")
            big = b.mul(wide, b.i64(1 << 33), "big")
            return b.add(big, b.i64(7))

        out = _run(I64, emit)
        assert np.array_equal(out, lanes * (1 << 33) + 7)


class TestFloatOpcodes:
    def test_frem(self):
        def emit(b, lane):
            x = b.sitofp(lane, F32, "x")
            return b.binop(Opcode.FREM, x, b.f32(2.5))

        out = _run(F32, emit)
        assert np.allclose(out, np.fmod(lanes.astype(np.float32), 2.5))

    def test_fmin_fmax(self):
        def emit(b, lane):
            x = b.sitofp(lane, F32, "x")
            lo = b.binop(Opcode.FMIN, x, b.f32(20.0))
            return b.binop(Opcode.FMAX, lo, b.f32(3.0))

        out = _run(F32, emit)
        assert np.allclose(out, np.clip(lanes, 3.0, 20.0))

    def test_division_by_zero_masked_lane_safe(self):
        # Lane 0 divides by zero but only under a mask that excludes it.
        def emit(b, lane):
            x = b.sitofp(lane, F32, "x")
            quotient = b.fdiv(b.f32(10.0), x, "q")  # lane0: 10/0
            is_zero = b.fcmp(CmpPred.EQ, x, b.f32(0.0), "z")
            return b.select(is_zero, b.f32(-1.0), quotient)

        out = _run(F32, emit)
        assert out[0] == -1.0
        assert np.allclose(out[1:], 10.0 / lanes[1:].astype(np.float32))


class TestCastsAndSelect:
    def test_trunc_to_bool_takes_low_bit(self):
        def emit(b, lane):
            bit = b.cast(CastKind.TRUNC, lane, BOOL, "bit")
            return b.select(bit, b.i32(111), b.i32(222))

        out = _run(I32, emit)
        expected = np.where(lanes % 2 == 1, 111, 222).astype(np.int32)
        assert np.array_equal(out, expected)

    def test_fptosi_truncates_toward_zero(self):
        def emit(b, lane):
            x = b.sitofp(lane, F32, "x")
            scaled = b.fmul(x, b.f32(0.7), "scaled")
            return b.fptosi(scaled, I32)

        out = _run(I32, emit)
        # The kernel computes in f32 (10 * 0.7f = 7.0000005f -> 7), so
        # the reference must too.
        scaled = lanes.astype(np.float32) * np.float32(0.7)
        expected = np.trunc(scaled).astype(np.int32)
        assert np.array_equal(out, expected)

    def test_zext_sext_roundtrip(self):
        def emit(b, lane):
            cond = b.icmp(CmpPred.GT, lane, b.i32(15), "c")
            z = b.zext(cond, I32, "z")  # 0/1
            return b.mul(z, b.i32(100))

        out = _run(I32, emit)
        assert np.array_equal(out, np.where(lanes > 15, 100, 0))
