"""Smoke tests: the fast example scripts must run and produce their
headline output (the slower bypassing example is exercised indirectly
through benchmarks/bench_fig06_bypass_kepler.py)."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "CUDAAdvisor says:" in out
    assert "Memory divergence" in out
    assert "horizontal cache bypassing" in out


def test_memory_divergence_tour():
    out = _run("memory_divergence_tour.py")
    assert "particles_aos" in out
    assert "particles_soa" in out
    assert "Kepler (128-byte cache lines)" in out
    assert "Pascal (32-byte cache lines)" in out
    # The SoA fix collapses the Kepler distribution to degree 1.00.
    assert "particles_soa, 192 warp instructions, degree = 1.00" in out


def test_pc_sampling_example():
    out = _run("pc_sampling_vs_instrumentation.py")
    assert "line coverage" in out
    assert "100.0%" in out  # period-1 sampling reaches full coverage
