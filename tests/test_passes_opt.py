"""Tests for the generic optimization passes.

Each pass is checked structurally *and* semantically: the optimized
kernel must compute the same results as the unoptimized one.
"""

import numpy as np
import pytest

from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.ir import IRBuilder, Module, I32, F32, VOID, verify_module, ptr
from repro.ir.instructions import Alloca, CmpPred, Load, Opcode, Phi, Store
from repro.ir.values import Constant
from repro.passes import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    Mem2RegPass,
    PassManager,
    SimplifyCFGPass,
    optimization_pipeline,
)
from tests.conftest import KERNELS


def _count(fn, cls):
    return sum(1 for i in fn.instructions() if isinstance(i, cls))


class TestMem2Reg:
    def test_promotes_scalar_allocas(self, fresh_module):
        fn = fresh_module.get_function("strided_sum")
        assert _count(fn, Alloca) > 0
        Mem2RegPass().run(fresh_module)
        verify_module(fresh_module)
        # All scalar locals promoted; no local loads/stores remain.
        assert _count(fn, Alloca) == 0

    def test_inserts_phis_for_loops(self, fresh_module):
        Mem2RegPass().run(fresh_module)
        fn = fresh_module.get_function("strided_sum")
        assert _count(fn, Phi) >= 2  # loop counter + accumulator

    def test_keeps_array_allocas(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        b = IRBuilder.at_end(fn.add_block("entry"))
        arr = b.alloca(F32, 16, "buf")  # count > 1: not promotable
        b.store(b.f32(1.0), b.gep(arr, b.i32(0)))
        b.ret()
        Mem2RegPass().run(m)
        assert _count(fn, Alloca) == 1

    def test_semantics_preserved(self):
        module = compile_kernels([KERNELS["divergent_kernel"]], "m1")
        opt = compile_kernels([KERNELS["divergent_kernel"]], "m2")
        Mem2RegPass().run(opt)

        data = np.arange(64, dtype=np.int32)
        outs = []
        for mod in (module, opt):
            dev = Device(KEPLER_K40C)
            img = dev.load_module(mod)
            d_in = dev.malloc(data.nbytes)
            d_out = dev.malloc(data.nbytes)
            dev.memcpy_htod(d_in, data)
            dev.launch(img, "divergent_kernel", 2, 32, [d_in, d_out, 64])
            outs.append(dev.memcpy_dtoh(d_out, np.int32, 64))
        assert np.array_equal(outs[0], outs[1])


class TestConstantFold:
    def _fn_with_constants(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(ptr(I32), "out")], kind="kernel")
        b = IRBuilder.at_end(fn.add_block("entry"))
        x = b.add(b.i32(2), b.i32(3))
        y = b.mul(x, b.i32(4))
        b.store(y, b.gep(fn.args[0], b.i32(0)))
        b.ret()
        return m, fn

    def test_folds_chains(self):
        m, fn = self._fn_with_constants()
        assert ConstantFoldPass().run(m)
        verify_module(m)
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert isinstance(stores[0].value, Constant)
        assert stores[0].value.value == 20

    def test_division_by_zero_not_folded(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(ptr(I32), "out")], kind="kernel")
        b = IRBuilder.at_end(fn.add_block("entry"))
        q = b.sdiv(b.i32(10), b.i32(0))
        b.store(q, b.gep(fn.args[0], b.i32(0)))
        b.ret()
        ConstantFoldPass().run(m)
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert not isinstance(stores[0].value, Constant)

    def test_comparison_folding(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [], kind="kernel")
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        done = fn.add_block("done")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, b.i32(1), b.i32(2))
        b.cond_br(cond, then, done)
        IRBuilder.at_end(then).br(done)
        IRBuilder.at_end(done).ret()
        ConstantFoldPass().run(m)
        SimplifyCFGPass().run(m)
        verify_module(m)
        # icmp folded to true; branch folded; blocks merged.
        assert len(fn.blocks) == 1


class TestDCE:
    def test_removes_unused_pure_instructions(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(ptr(F32), "p")], kind="kernel")
        b = IRBuilder.at_end(fn.add_block("entry"))
        dead1 = b.fadd(b.f32(1.0), b.f32(2.0))
        dead2 = b.fmul(dead1, b.f32(3.0))  # kills dead1 transitively
        b.load(fn.args[0])  # unused load is removable too
        b.ret()
        assert DeadCodeEliminationPass().run(m)
        assert len(fn.entry.instructions) == 1  # just the ret

    def test_keeps_stores_and_calls(self, fresh_module):
        fn = fresh_module.get_function("block_reduce")
        stores_before = _count(fn, Store)
        DeadCodeEliminationPass().run(fresh_module)
        # Stores to shared/global memory must survive.
        from repro.ir.types import AddressSpace

        remaining = [
            i for i in fn.instructions()
            if isinstance(i, Store)
            and i.pointer.type.addrspace != AddressSpace.LOCAL
        ]
        assert remaining


class TestSimplifyCFG:
    def test_removes_unreachable_blocks(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [], kind="kernel")
        IRBuilder.at_end(fn.add_block("entry")).ret()
        dead = fn.add_block("dead")
        IRBuilder.at_end(dead).ret()
        assert SimplifyCFGPass().run(m)
        assert len(fn.blocks) == 1

    def test_merges_straightline_blocks(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [], kind="kernel")
        a = fn.add_block("a")
        b_blk = fn.add_block("b")
        IRBuilder.at_end(a).br(b_blk)
        IRBuilder.at_end(b_blk).ret()
        assert SimplifyCFGPass().run(m)
        assert len(fn.blocks) == 1
        verify_module(m)


class TestFullPipeline:
    @pytest.mark.parametrize("name", ["saxpy", "strided_sum", "block_reduce",
                                      "divergent_kernel"])
    def test_pipeline_preserves_semantics(self, name):
        plain = compile_kernels([KERNELS[name]], "plain")
        optim = compile_kernels([KERNELS[name]], "optim")
        optimization_pipeline().run(optim)
        verify_module(optim)

        n = 128
        data = (np.arange(n, dtype=np.float32) % 17).astype(np.float32)
        idata = np.arange(n, dtype=np.int32)
        outs = []
        for mod in (plain, optim):
            dev = Device(KEPLER_K40C)
            img = dev.load_module(mod)
            if name == "saxpy":
                dx = dev.malloc(data.nbytes)
                dy = dev.malloc(data.nbytes)
                dev.memcpy_htod(dx, data)
                dev.memcpy_htod(dy, data)
                dev.launch(img, name, 2, 64, [dx, dy, 2.0, n])
                outs.append(dev.memcpy_dtoh(dy, np.float32, n))
            elif name == "strided_sum":
                dx = dev.malloc(data.nbytes)
                do = dev.malloc(4 * 64)
                dev.memcpy_htod(dx, data)
                dev.launch(img, name, 1, 64, [dx, do, n, 3])
                outs.append(dev.memcpy_dtoh(do, np.float32, 64))
            elif name == "block_reduce":
                dx = dev.malloc(data.nbytes)
                do = dev.malloc(4)
                dev.memcpy_htod(dx, data)
                dev.memcpy_htod(do, np.zeros(1, dtype=np.float32))
                dev.launch(img, name, 2, 64, [dx, do, n])
                outs.append(dev.memcpy_dtoh(do, np.float32, 1))
            else:
                di = dev.malloc(idata.nbytes)
                do = dev.malloc(idata.nbytes)
                dev.memcpy_htod(di, idata)
                dev.launch(img, name, 4, 32, [di, do, n])
                outs.append(dev.memcpy_dtoh(do, np.int32, n))
        assert np.allclose(outs[0], outs[1], rtol=1e-6)

    def test_pipeline_reduces_instruction_count(self, fresh_module):
        before = sum(
            len(list(fn.instructions()))
            for fn in fresh_module.functions.values()
            if not fn.is_declaration
        )
        optimization_pipeline().run(fresh_module)
        after = sum(
            len(list(fn.instructions()))
            for fn in fresh_module.functions.values()
            if not fn.is_declaration
        )
        assert after < before
