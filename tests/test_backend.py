"""Tests for the PTX backend and fat-binary container."""

import pytest

from repro.backend import FatBinary, embed_fatbin, lower_module_to_ptx
from repro.backend.fatbin import build_fatbin
from repro.errors import BackendError
from repro.ir import Module
from repro.passes import (
    HorizontalBypassPass,
    MemoryInstrumentationPass,
    optimization_pipeline,
)


class TestPTXLowering:
    def test_kernel_entry_directives(self, fresh_module):
        ptx = lower_module_to_ptx(fresh_module, "3.5")
        assert ".version" in ptx
        assert ".target sm_35" in ptx
        assert ".visible .entry saxpy(" in ptx
        assert ".func clampf(" in ptx  # device function

    def test_param_loading_and_registers(self, fresh_module):
        ptx = lower_module_to_ptx(fresh_module)
        assert "ld.param.u64" in ptx  # pointer params
        assert "ld.param.f32" in ptx
        assert ".reg .f32" in ptx
        assert ".reg .pred" in ptx

    def test_global_memory_operations(self, fresh_module):
        ptx = lower_module_to_ptx(fresh_module)
        assert "ld.global.f32" in ptx
        assert "st.global.f32" in ptx
        assert "ld.shared" in ptx  # block_reduce's tile
        assert "st.shared" in ptx
        assert "atom.global.add.f32" in ptx

    def test_control_flow(self, fresh_module):
        ptx = lower_module_to_ptx(fresh_module)
        assert "setp.lt.s32" in ptx
        assert "bra.uni" in ptx
        assert "@%p" in ptx  # predicated branch
        assert "bar.sync" not in ptx or True  # barrier is a call target

    def test_shared_global_declared(self, fresh_module):
        ptx = lower_module_to_ptx(fresh_module)
        assert ".shared" in ptx
        assert "block_reduce_tile" in ptx

    def test_bypass_cache_operators_visible(self, fresh_module):
        """The Listing 5 rewrite must be visible in the PTX text."""
        optimization_pipeline().run(fresh_module)
        HorizontalBypassPass().run(fresh_module)
        ptx = lower_module_to_ptx(fresh_module)
        assert "ld.global.dyn.f32" in ptx

    def test_hook_declared_extern(self, fresh_module):
        MemoryInstrumentationPass().run(fresh_module)
        ptx = lower_module_to_ptx(fresh_module)
        assert ".extern .func Record" in ptx
        assert "call.uni Record" in ptx

    def test_host_module_rejected(self):
        host = Module("host", target="host")
        with pytest.raises(BackendError, match="not a device module"):
            lower_module_to_ptx(host)


class TestFatBinary:
    def test_multi_arch_bundle(self, fresh_module):
        fat = build_fatbin(fresh_module, ["3.5", "6.0"])
        assert "sm_35" in fat.images["3.5"]
        assert "sm_60" in fat.images["6.0"]

    def test_best_image_selection(self, fresh_module):
        fat = build_fatbin(fresh_module, ["3.5", "6.0"])
        # A CC 7.0 device JITs the highest image not exceeding it.
        assert fat.best_image("7.0") == fat.images["6.0"]
        assert fat.best_image("3.7") == fat.images["3.5"]
        with pytest.raises(BackendError, match="no image"):
            fat.best_image("3.0")

    def test_serialize_roundtrip(self, fresh_module):
        fat = build_fatbin(fresh_module, ["3.5"])
        blob = fat.serialize()
        back = FatBinary.deserialize(blob)
        assert back.images == fat.images
        assert back.module_name == fat.module_name

    def test_corruption_detected(self, fresh_module):
        fat = build_fatbin(fresh_module, ["3.5"])
        blob = fat.serialize()
        tampered = blob[:-8] + "deadbeef"
        with pytest.raises(BackendError, match="corrupt"):
            FatBinary.deserialize(tampered)

    def test_embed_into_host_module(self, fresh_module):
        host = Module("host", target="host")
        fat = build_fatbin(fresh_module, ["3.5"])
        embed_fatbin(host, fat)
        # Figure 2: the fat binary is a string literal in host bitcode.
        blobs = [s.text for s in host.strings.values()]
        assert any(FatBinary.deserialize(b).module_name == "testmod"
                   for b in blobs)
