"""Property-based tests of SIMT execution semantics.

Hypothesis generates inputs; the simulated warp execution must match a
pure-Python scalar reference for arbitrarily divergent control flow.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_kernels, i32, kernel, ptr_i32
from repro.gpu import Device, KEPLER_K40C
from repro.passes import optimization_pipeline


@kernel
def k_branch_mix(data: ptr_i32, out: ptr_i32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        v = data[gid]
        acc = 0
        if v % 3 == 0:
            acc = v * 2
        else:
            if v % 3 == 1:
                acc = v - 5
            else:
                acc = -v
        i = 0
        while i < v % 7:
            if i % 2 == 0:
                acc += i
            i += 1
        out[gid] = acc


def _reference(v):
    if v % 3 == 0:
        acc = v * 2
    elif v % 3 == 1:
        acc = v - 5
    else:
        acc = -v
    for i in range(v % 7):
        if i % 2 == 0:
            acc += i
    return acc


@pytest.fixture(scope="module")
def modules():
    plain = compile_kernels([k_branch_mix], "plain")
    optim = compile_kernels([k_branch_mix], "optim")
    optimization_pipeline().run(optim)
    return {"plain": plain, "optim": optim}


class TestDivergenceSemantics:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1,
            max_size=96,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_reference(self, modules, values):
        data = np.asarray(values, dtype=np.int32)
        n = len(data)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(modules["optim"])
        di = dev.malloc(max(data.nbytes, 4))
        do = dev.malloc(max(data.nbytes, 4))
        dev.memcpy_htod(di, data)
        grid = (n + 31) // 32
        dev.launch(img, "k_branch_mix", grid, 32, [di, do, n])
        out = dev.memcpy_dtoh(do, np.int32, n)
        assert list(out) == [_reference(int(v)) for v in values]

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=50), min_size=32,
            max_size=32,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_optimization_invariance(self, modules, values):
        """Unoptimized and mem2reg'd/folded code agree lane-for-lane."""
        data = np.asarray(values, dtype=np.int32)
        outs = []
        for key in ("plain", "optim"):
            dev = Device(KEPLER_K40C)
            img = dev.load_module(modules[key])
            di = dev.malloc(data.nbytes)
            do = dev.malloc(data.nbytes)
            dev.memcpy_htod(di, data)
            dev.launch(img, "k_branch_mix", 1, 32, [di, do, 32])
            outs.append(dev.memcpy_dtoh(do, np.int32, 32))
        assert np.array_equal(outs[0], outs[1])


@kernel
def k_int_semantics(a: ptr_i32, b: ptr_i32, out: ptr_i32):
    t = tid_x
    x = a[t]
    y = b[t]
    out[t] = x // y + x % y


class TestDivisionSemantics:
    @given(
        xs=st.lists(st.integers(-1000, 1000), min_size=32, max_size=32),
        ys=st.lists(
            st.integers(-50, 50).filter(lambda v: v != 0),
            min_size=32, max_size=32,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_c_truncating_division(self, xs, ys):
        """// and % in the DSL follow C (truncate toward zero), matching
        nvcc, not Python's floor semantics."""
        module = compile_kernels([k_int_semantics], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        a = np.asarray(xs, dtype=np.int32)
        b = np.asarray(ys, dtype=np.int32)
        da = dev.malloc(a.nbytes)
        db = dev.malloc(b.nbytes)
        do = dev.malloc(a.nbytes)
        dev.memcpy_htod(da, a)
        dev.memcpy_htod(db, b)
        dev.launch(img, "k_int_semantics", 1, 32, [da, db, do])
        out = dev.memcpy_dtoh(do, np.int32, 32)

        def c_div(x, y):
            q = int(x / y)  # trunc toward zero
            r = x - q * y
            return q + r

        assert list(out) == [c_div(x, y) for x, y in zip(xs, ys)]
