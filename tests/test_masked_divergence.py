"""Property-based byte-identity for the masked batched backend.

Hypothesis drives adversarial divergence shapes -- nested if/else
chains, per-lane loop trip counts, gated barriers -- and the batched
backend's results (outputs, counters, cycles, and full instrumented
traces) must be indistinguishable from the serial interpreter's,
including the errors it raises."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.frontend import compile_kernels, i32, kernel, ptr_i32
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession
from tests.test_backend_batched import (
    _assert_profiles_identical,
    _assert_results_identical,
)


@kernel
def k_nested_ifelse(data: ptr_i32, out: ptr_i32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        v = data[gid]
        acc = 0
        if v % 4 == 0:
            if v % 8 == 0:
                acc = v * 3
            else:
                acc = v + 7
        else:
            if v % 2 == 0:
                acc = v - 9
            else:
                if v % 3 == 0:
                    acc = -v
                else:
                    acc = v * v
        out[gid] = acc


@kernel
def k_lane_loops(data: ptr_i32, out: ptr_i32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        v = data[gid]
        acc = 0
        i = 0
        while i < v % 11:  # per-lane trip count: lanes retire one by one
            if i % 3 == 0:
                j = 0
                while j < i % 5:  # nested, also per-lane
                    acc += j
                    j += 1
            else:
                acc -= i
            i += 1
        out[gid] = acc


@kernel
def k_gated_barrier(out: ptr_i32, k: i32):
    t = tid_x
    if t < k:
        syncthreads()
    out[t] = t


def _compile(kern, instrument=True):
    module = compile_kernels([kern], "m")
    optimization_pipeline().run(module)
    if instrument:
        instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    return module


def _run_data_kernel(kern, name, backend, values, grid=2, block=64):
    """Launch on one backend and capture result + output + profile."""
    data = np.asarray(values, dtype=np.int32)
    n = len(data)
    session = ProfilingSession()
    device = Device(KEPLER_K40C)
    device.backend = backend
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(_compile(kern))
    out_host = np.zeros(n, dtype=np.int32)
    d_in = runtime.cuda_malloc(data.nbytes, "in")
    d_out = runtime.cuda_malloc(out_host.nbytes, "out")
    runtime.cuda_memcpy_htod(d_in, data)
    runtime.cuda_memcpy_htod(d_out, out_host)
    result = runtime.launch_kernel(image, name, grid, block,
                                   [d_in, d_out, n])
    runtime.cuda_memcpy_dtoh(out_host, d_out)
    return result, out_host, session.last_profile


def _assert_backends_agree(kern, name, values, grid=2, block=64):
    ra, oa, pa = _run_data_kernel(kern, name, "interpreter", values,
                                  grid=grid, block=block)
    rb, ob, pb = _run_data_kernel(kern, name, "batched", values,
                                  grid=grid, block=block)
    assert np.array_equal(oa, ob)
    _assert_results_identical(ra, rb)
    _assert_profiles_identical(pa, pb)


values_strategy = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=120
)


class TestMaskedDivergenceProperties:
    @given(values=values_strategy)
    @settings(max_examples=15, deadline=None)
    def test_nested_ifelse_byte_identical(self, values):
        _assert_backends_agree(k_nested_ifelse, "k_nested_ifelse", values)

    @given(values=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=120))
    @settings(max_examples=15, deadline=None)
    def test_per_lane_trip_counts_byte_identical(self, values):
        _assert_backends_agree(k_lane_loops, "k_lane_loops", values)

    @given(values=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=90))
    @settings(max_examples=10, deadline=None)
    def test_partial_warp_byte_identical(self, values):
        """block=48 leaves warp 1 half-resident in every CTA."""
        _assert_backends_agree(k_lane_loops, "k_lane_loops", values,
                               block=48)

    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                           min_size=1, max_size=120))
    @settings(max_examples=10, deadline=None)
    def test_single_warp_cta_gangs_byte_identical(self, values):
        """block=16 means one (partial) warp per CTA: only the
        launch-wide CTA gangs can batch these, across SMs."""
        _assert_backends_agree(k_nested_ifelse, "k_nested_ifelse", values,
                               grid=8, block=16)


def _launch_barrier(backend, k, block=64):
    device = Device(KEPLER_K40C)
    device.backend = backend
    runtime = CudaRuntime(device)
    image = device.load_module(_compile(k_gated_barrier, instrument=False))
    d_out = runtime.cuda_malloc(4 * block, "out")
    runtime.launch_kernel(image, "k_gated_barrier", 1, block,
                          [d_out, int(k)])
    return runtime.cuda_memcpy_dtoh(np.zeros(block, np.int32), d_out)


class TestDivergentBarriers:
    @given(k=st.integers(min_value=1, max_value=63).filter(
        lambda k: k % 32 != 0))
    @settings(max_examples=12, deadline=None)
    def test_gated_barrier_raises_identically(self, k):
        """A barrier only part of a warp reaches must fail on both
        backends with the exact same diagnostic. (k that is a multiple
        of the warp size gates whole warps -- legal, covered below.)"""
        with pytest.raises(ExecutionError) as exc_a:
            _launch_barrier("interpreter", k)
        with pytest.raises(ExecutionError) as exc_b:
            _launch_barrier("batched", k)
        assert str(exc_a.value) == str(exc_b.value)

    @pytest.mark.parametrize("k", [32, 64])
    def test_warp_uniform_barrier_still_works(self, k):
        """Whole-warp gating (k = 32) and no gating (k = 64) are both
        legal and must agree across backends."""
        oa = _launch_barrier("interpreter", k)
        ob = _launch_barrier("batched", k)
        assert np.array_equal(oa, ob)
