"""Tests for the memory-divergence and branch-divergence analyzers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.divergence_branch import (
    BranchDivergenceProfile,
    branch_divergence_analysis,
)
from repro.analysis.divergence_memory import (
    MemoryDivergenceProfile,
    divergent_sites,
    memory_divergence_analysis,
)
from repro.profiler.records import BlockRecord, MemoryAccessRecord, MemoryOp


def _mem_record(addrs, seq=0, bits=32, line=7, col=3):
    addresses = np.zeros(32, dtype=np.int64)
    mask = np.zeros(32, dtype=bool)
    for i, a in enumerate(addrs):
        addresses[i] = a
        mask[i] = True
    return MemoryAccessRecord(
        seq=seq, cta=0, warp_in_cta=0, addresses=addresses, mask=mask,
        bits=bits, line=line, col=col, op=MemoryOp.LOAD, call_path_id=0,
    )


def _block_record(active, resident=32, name="k:entry", seq=0):
    return BlockRecord(
        seq=seq, cta=0, warp_in_cta=0, block_name=name, line=5, col=1,
        active_lanes=active, resident_lanes=resident, call_path_id=0,
    )


class _FakeProfile:
    def __init__(self, memory_records=(), block_records=()):
        self.memory_records = list(memory_records)
        self.block_records = list(block_records)


class TestMemoryDivergence:
    def test_coalesced_counts_one_line(self):
        profile = _FakeProfile([_mem_record([4096 + 4 * i for i in range(32)])])
        md = memory_divergence_analysis(profile, line_size=128)
        assert md.distribution == {1: 1.0}
        assert md.divergence_degree == 1.0

    def test_divergent_counts_32_lines(self):
        profile = _FakeProfile([_mem_record([4096 + 128 * i for i in range(32)])])
        md = memory_divergence_analysis(profile, line_size=128)
        assert md.distribution == {32: 1.0}

    def test_degree_is_weighted_average(self):
        profile = _FakeProfile([
            _mem_record([4096] * 32),
            _mem_record([4096 + 128 * i for i in range(32)]),
        ])
        md = memory_divergence_analysis(profile, line_size=128)
        assert md.divergence_degree == pytest.approx((1 + 32) / 2)

    def test_same_trace_two_architectures(self):
        """One trace yields both Kepler and Pascal views (128B vs 32B)."""
        records = [_mem_record([4096 + 4 * i for i in range(32)])]
        kepler = memory_divergence_analysis(_FakeProfile(records), 128)
        pascal = memory_divergence_analysis(_FakeProfile(records), 32)
        assert kepler.distribution == {1: 1.0}
        assert pascal.distribution == {4: 1.0}

    def test_divergent_sites_lookup(self):
        records = [
            _mem_record([4096 + 128 * i for i in range(32)], line=33, col=9),
            _mem_record([4096] * 32, line=12, col=1),
        ]
        sites = divergent_sites(_FakeProfile(records), line_size=128)
        assert (33, 9) in sites
        assert (12, 1) not in sites

    @given(st.lists(st.integers(1, 32), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_degree_bounds(self, counts):
        md = MemoryDivergenceProfile(line_size=128)
        for c in counts:
            md.add(c)
        assert 1.0 <= md.divergence_degree <= 32.0
        assert sum(md.distribution.values()) == pytest.approx(1.0)

    def test_merge(self):
        a = MemoryDivergenceProfile(line_size=128)
        b = MemoryDivergenceProfile(line_size=128)
        a.add(1)
        b.add(32)
        a.merge(b)
        assert a.instructions == 2
        assert a.divergence_degree == pytest.approx(16.5)


class TestBranchDivergence:
    def test_full_mask_not_divergent(self):
        bd = branch_divergence_analysis(
            _FakeProfile(block_records=[_block_record(32)])
        )
        assert bd.total_blocks == 1
        assert bd.divergent_blocks == 0
        assert bd.divergence_percent == 0.0

    def test_partial_mask_divergent(self):
        bd = branch_divergence_analysis(
            _FakeProfile(block_records=[_block_record(13)])
        )
        assert bd.divergent_blocks == 1
        assert bd.divergence_percent == 100.0

    def test_partial_warp_baseline(self):
        """A 16-thread CTA's full warp has 16 resident lanes: executing
        all 16 is NOT divergence (nw's 1-warp CTAs rely on this)."""
        bd = branch_divergence_analysis(
            _FakeProfile(block_records=[_block_record(16, resident=16)])
        )
        assert bd.divergent_blocks == 0

    def test_table3_percentages(self):
        records = [_block_record(32)] * 3 + [_block_record(5)]
        bd = branch_divergence_analysis(_FakeProfile(block_records=records))
        assert bd.divergence_percent == pytest.approx(25.0)

    def test_worst_blocks_ranking(self):
        records = (
            [_block_record(5, name="k:hot")] * 3
            + [_block_record(7, name="k:mild")]
            + [_block_record(32, name="k:clean")] * 4
        )
        bd = branch_divergence_analysis(_FakeProfile(block_records=records))
        worst = bd.worst_blocks(2)
        assert worst[0][0] == "k:hot"
        assert worst[0][1].divergent == 3
        assert worst[1][0] == "k:mild"

    def test_merge(self):
        a = branch_divergence_analysis(
            _FakeProfile(block_records=[_block_record(32, name="k:a")])
        )
        b = branch_divergence_analysis(
            _FakeProfile(block_records=[_block_record(3, name="k:a")])
        )
        a.merge(b)
        assert a.total_blocks == 2
        assert a.per_block["k:a"].executions == 2
        assert a.per_block["k:a"].divergent == 1
