"""Fast-path equivalence: the columnar trace buffers, the parallel
launch, and the batched-warp backend must be invisible to every
consumer.

Four properties are pinned here:

* **Columnar vs. record analyses** -- running the analyzers over the
  drained column views must give numerically identical results to
  running them over the same trace materialized as classic record
  lists (which exercises the per-record fallback paths).
* **Parallel vs. serial launch** -- with ``Device.parallel_workers``
  set, drained traces, call-path registries, and hardware statistics
  must be byte-identical to a serial run.
* **Batched vs. interpreter backend** -- with ``device.backend =
  "batched"``, everything above must again be byte-identical, alone
  and combined with parallel workers.
* **Stride sampling** -- a ``sample_rate=k`` trace must be exactly
  every k-th record of the full serial memory+arith stream (same seqs,
  same bytes), whichever backend or worker count produced it.
"""

import numpy as np
import pytest

from repro.analysis.cache_model import profile_stack_distances
from repro.analysis.divergence_memory import (
    divergent_sites,
    memory_divergence_analysis,
)
from repro.analysis.reuse_distance import (
    ReuseDistanceModel,
    reuse_distance_analysis,
    site_reuse_analysis,
)
from repro.apps import build_app
from repro.frontend import compile_kernels, kernel, ptr_i32
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession
from repro.profiler.buffers import MemoryColumns


@kernel
def bump_counter(counter: ptr_i32):
    atomic_add(counter, 0, 1)  # noqa: F821 -- DSL intrinsic


APPS = [
    ("bfs", {"num_nodes": 128}),
    ("hotspot", {"n": 32, "steps": 2}),
    ("syrk", {"n": 24, "m": 24}),
]


def _profile_session(app_name, app_kwargs, workers=None, backend=None,
                     sample_rate=1):
    app = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession(sample_rate=sample_rate)
    device = Device(KEPLER_K40C)
    device.parallel_workers = workers
    if backend is not None:
        device.backend = backend
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = app.prepare(runtime)
    app.run(runtime, image, state)
    return session


class _RecordListProfile:
    """The same profile with plain record lists (fallback paths)."""

    def __init__(self, profile):
        self.memory_records = list(profile.memory_records)
        self.block_records = list(profile.block_records)
        self.arith_records = list(profile.arith_records)

    def memory_records_by_cta(self):
        grouped = {}
        for record in self.memory_records:
            grouped.setdefault(record.cta, []).append(record)
        return grouped


def _memory_record_equal(a, b):
    return (
        a.seq == b.seq
        and a.cta == b.cta
        and a.warp_in_cta == b.warp_in_cta
        and np.array_equal(a.addresses, b.addresses)
        and np.array_equal(a.mask, b.mask)
        and a.bits == b.bits
        and a.line == b.line
        and a.col == b.col
        and a.op == b.op
        and a.call_path_id == b.call_path_id
    )


@pytest.mark.parametrize("app_name,app_kwargs", APPS)
class TestColumnarVsRecordAnalyses:
    def test_reuse_histograms_identical(self, app_name, app_kwargs):
        for profile in _profile_session(app_name, app_kwargs).profiles:
            assert isinstance(profile.memory_records, MemoryColumns)
            rows = _RecordListProfile(profile)
            for model in ReuseDistanceModel:
                fast = reuse_distance_analysis(profile, model=model)
                slow = reuse_distance_analysis(rows, model=model)
                assert fast.frequencies == slow.frequencies
                assert fast.samples == slow.samples
                assert fast.finite_sum == slow.finite_sum
                fast_sites = site_reuse_analysis(profile, model=model)
                slow_sites = site_reuse_analysis(rows, model=model)
                assert list(fast_sites) == list(slow_sites)
                for site, hist in fast_sites.items():
                    assert hist.frequencies == slow_sites[site].frequencies

    def test_divergence_distributions_identical(self, app_name, app_kwargs):
        for profile in _profile_session(app_name, app_kwargs).profiles:
            rows = _RecordListProfile(profile)
            for line_size in (128, 32):
                fast = memory_divergence_analysis(profile, line_size)
                slow = memory_divergence_analysis(rows, line_size)
                assert fast.distribution == slow.distribution
                assert fast.divergence_degree == slow.divergence_degree
                assert divergent_sites(profile, line_size) == divergent_sites(
                    rows, line_size
                )

    def test_stack_distances_identical(self, app_name, app_kwargs):
        for profile in _profile_session(app_name, app_kwargs).profiles:
            rows = _RecordListProfile(profile)
            assert profile_stack_distances(profile) == profile_stack_distances(
                rows
            )


def _assert_profiles_match(serial, other):
    assert len(serial) == len(other)
    for pa, pb in zip(serial, other):
        assert len(pa.memory_records) == len(pb.memory_records)
        assert all(
            _memory_record_equal(a, b)
            for a, b in zip(pa.memory_records, pb.memory_records)
        )
        assert list(pa.block_records) == list(pb.block_records)
        assert list(pa.arith_records) == list(pb.arith_records)
        assert len(pa.call_paths) == len(pb.call_paths)
        assert all(
            pa.call_paths.path(i) == pb.call_paths.path(i)
            for i in range(len(pa.call_paths))
        )
        assert pa.dropped_records == pb.dropped_records
        la, lb = pa.launch_result, pb.launch_result
        assert la.cycles == lb.cycles
        assert la.instructions == lb.instructions
        assert la.transactions == lb.transactions
        assert la.branches == lb.branches
        assert la.divergent_branches == lb.divergent_branches
        assert la.cache == lb.cache


@pytest.mark.parametrize("app_name,app_kwargs", APPS)
def test_parallel_launch_matches_serial(app_name, app_kwargs):
    serial = _profile_session(app_name, app_kwargs).profiles
    parallel = _profile_session(app_name, app_kwargs, workers=4).profiles
    _assert_profiles_match(serial, parallel)


@pytest.mark.parametrize("app_name,app_kwargs", APPS)
def test_batched_backend_matches_interpreter(app_name, app_kwargs):
    serial = _profile_session(app_name, app_kwargs).profiles
    batched = _profile_session(app_name, app_kwargs, backend="batched")
    _assert_profiles_match(serial, batched.profiles)


@pytest.mark.parametrize("app_name,app_kwargs", APPS)
def test_batched_parallel_matches_serial_interpreter(app_name, app_kwargs):
    serial = _profile_session(app_name, app_kwargs).profiles
    combined = _profile_session(
        app_name, app_kwargs, workers=4, backend="batched"
    )
    _assert_profiles_match(serial, combined.profiles)


@pytest.mark.parametrize("rate", [2, 3, 5])
@pytest.mark.parametrize(
    "backend,workers",
    [("interpreter", None), ("batched", None), ("interpreter", 4),
     ("batched", 4)],
)
def test_stride_sampling_is_exact_subset(rate, backend, workers):
    """sample_rate=k keeps exactly every k-th event of the merged
    memory+arith stream of a full serial trace -- same seqs, same rows --
    regardless of backend or worker count, and block records are never
    sampled."""
    app_name, app_kwargs = APPS[0]
    full = _profile_session(app_name, app_kwargs).profiles
    sampled = _profile_session(
        app_name, app_kwargs, workers=workers, backend=backend,
        sample_rate=rate,
    ).profiles
    assert len(full) == len(sampled)
    for pf, ps in zip(full, sampled):
        merged = {}
        for record in pf.memory_records:
            merged[record.seq] = ("mem", record)
        for record in pf.arith_records:
            merged[record.seq] = ("arith", record)
        kept_seqs = sorted(merged)[::rate]
        expect_mem = [merged[s][1] for s in kept_seqs if merged[s][0] == "mem"]
        expect_arith = [
            merged[s][1] for s in kept_seqs if merged[s][0] == "arith"
        ]
        assert len(ps.memory_records) == len(expect_mem)
        assert all(
            _memory_record_equal(a, b)
            for a, b in zip(expect_mem, ps.memory_records)
        )
        assert list(ps.arith_records) == expect_arith
        assert list(ps.block_records) == list(pf.block_records)


def test_parallel_conflicting_writes_fall_back_to_serial():
    """CTAs atomically updating one location overlap in every shard's
    write set; the launch must detect it and produce serial results."""
    module = compile_kernels([bump_counter], "conflict")
    optimization_pipeline().run(module)

    def run(workers):
        device = Device(KEPLER_K40C)
        device.parallel_workers = workers
        runtime = CudaRuntime(device)
        image = device.load_module(module)
        d_counter = runtime.cuda_malloc(4, "d_counter")
        runtime.cuda_memcpy_htod(d_counter, np.zeros(1, dtype=np.int32))
        runtime.launch_kernel(image, "bump_counter", 8, 32, [d_counter])
        out = np.zeros(1, dtype=np.int32)
        runtime.cuda_memcpy_dtoh(out, d_counter)
        return int(out[0])

    assert run(None) == run(4) == 8 * 32
