"""Tests for CFG utilities: dominators and immediate post-dominators."""

import pytest

from repro.ir import IRBuilder, Module, VOID, I32
from repro.ir.cfg import (
    immediate_dominators,
    immediate_post_dominators,
    predecessor_map,
    reachable_blocks,
    reverse_post_order,
)
from repro.ir.instructions import CmpPred
from repro.ir.values import Constant


def _diamond():
    """entry -> (then|else) -> merge -> exit."""
    m = Module("m", target="nvptx")
    fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
    entry = fn.add_block("entry")
    then = fn.add_block("then")
    els = fn.add_block("else")
    merge = fn.add_block("merge")
    b = IRBuilder.at_end(entry)
    cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(5))
    b.cond_br(cond, then, els)
    IRBuilder.at_end(then).br(merge)
    IRBuilder.at_end(els).br(merge)
    IRBuilder.at_end(merge).ret()
    return fn, entry, then, els, merge


def _loop():
    """entry -> header <-> body, header -> exit."""
    m = Module("m", target="nvptx")
    fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder.at_end(entry).br(header)
    b = IRBuilder.at_end(header)
    cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(5))
    b.cond_br(cond, body, exit_)
    IRBuilder.at_end(body).br(header)
    IRBuilder.at_end(exit_).ret()
    return fn, entry, header, body, exit_


class TestOrderAndPreds:
    def test_reverse_post_order_starts_at_entry(self):
        fn, entry, then, els, merge = _diamond()
        order = reverse_post_order(fn)
        assert order[0] is entry
        assert order[-1] is merge
        assert set(order) == {entry, then, els, merge}

    def test_predecessors(self):
        fn, entry, then, els, merge = _diamond()
        preds = predecessor_map(fn)
        assert preds[entry] == []
        assert set(preds[merge]) == {then, els}

    def test_unreachable_excluded(self):
        fn, entry, *_ = _diamond()
        dead = fn.add_block("dead")
        IRBuilder.at_end(dead).ret()
        assert dead not in reachable_blocks(fn)


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, then, els, merge = _diamond()
        idom = immediate_dominators(fn)
        assert idom[entry] is None
        assert idom[then] is entry
        assert idom[els] is entry
        assert idom[merge] is entry

    def test_loop_idoms(self):
        fn, entry, header, body, exit_ = _loop()
        idom = immediate_dominators(fn)
        assert idom[header] is entry
        assert idom[body] is header
        assert idom[exit_] is header


class TestPostDominators:
    def test_diamond_reconvergence(self):
        """The branch block's ipostdom is the merge: the SIMT stack must
        reconverge the diamond exactly there."""
        fn, entry, then, els, merge = _diamond()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[entry] is merge
        assert ipdom[then] is merge
        assert ipdom[els] is merge
        assert ipdom[merge] is None  # exits the function

    def test_loop_reconvergence(self):
        fn, entry, header, body, exit_ = _loop()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[header] is exit_  # loop branch reconverges at the exit
        assert ipdom[body] is header

    def test_branch_to_returns(self):
        """Both arms return: reconvergence point is the virtual exit."""
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        entry = fn.add_block("entry")
        a = fn.add_block("a")
        b_blk = fn.add_block("b")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(cond, a, b_blk)
        IRBuilder.at_end(a).ret()
        IRBuilder.at_end(b_blk).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[entry] is None

    def test_nested_diamonds(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        entry = fn.add_block("entry")
        outer_then = fn.add_block("outer.then")
        inner_then = fn.add_block("inner.then")
        inner_merge = fn.add_block("inner.merge")
        outer_merge = fn.add_block("outer.merge")
        b = IRBuilder.at_end(entry)
        c1 = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(c1, outer_then, outer_merge)
        b.position_at_end(outer_then)
        c2 = b.icmp(CmpPred.GT, fn.args[0], b.i32(-5))
        b.cond_br(c2, inner_then, inner_merge)
        IRBuilder.at_end(inner_then).br(inner_merge)
        IRBuilder.at_end(inner_merge).br(outer_merge)
        IRBuilder.at_end(outer_merge).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[entry] is outer_merge
        assert ipdom[outer_then] is inner_merge
        assert ipdom[inner_then] is inner_merge
        assert ipdom[inner_merge] is outer_merge

    def test_triangle_if_without_else(self):
        """entry -> (then | merge), then -> merge: the merge block
        post-dominates the branch even with one empty arm -- the shape
        every ``if cond:`` without ``else`` lowers to."""
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        merge = fn.add_block("merge")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(cond, then, merge)
        IRBuilder.at_end(then).br(merge)
        IRBuilder.at_end(merge).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[entry] is merge
        assert ipdom[then] is merge

    def test_loop_with_break(self):
        """header -> (body | exit), body -> (latch | exit): the break
        edge gives the body two exits; the loop exit is the only block
        that post-dominates header AND body."""
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        latch = fn.add_block("latch")
        exit_ = fn.add_block("exit")
        IRBuilder.at_end(entry).br(header)
        b = IRBuilder.at_end(header)
        c1 = b.icmp(CmpPred.LT, fn.args[0], b.i32(10))
        b.cond_br(c1, body, exit_)
        b.position_at_end(body)
        c2 = b.icmp(CmpPred.EQ, fn.args[0], b.i32(3))
        b.cond_br(c2, exit_, latch)  # break out of the loop
        IRBuilder.at_end(latch).br(header)
        IRBuilder.at_end(exit_).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[header] is exit_
        assert ipdom[body] is exit_  # latch does NOT post-dominate body
        assert ipdom[latch] is header

    def test_one_arm_returns(self):
        """entry -> (ret | cont): only the continuing arm reaches the
        merge, so the branch reconverges at the virtual exit (None) --
        the batched backend must de-batch such branches."""
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [(I32, "n")], kind="kernel")
        entry = fn.add_block("entry")
        early = fn.add_block("early")
        cont = fn.add_block("cont")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(cond, early, cont)
        IRBuilder.at_end(early).ret()
        IRBuilder.at_end(cont).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[entry] is None
        assert ipdom[early] is None
        assert ipdom[cont] is None

    def test_straightline_chain(self):
        """a -> b -> c: each block's ipostdom is simply its successor."""
        m = Module("m", target="nvptx")
        fn = m.add_function("f", VOID, [], kind="kernel")
        a = fn.add_block("a")
        b_blk = fn.add_block("b")
        c = fn.add_block("c")
        IRBuilder.at_end(a).br(b_blk)
        IRBuilder.at_end(b_blk).br(c)
        IRBuilder.at_end(c).ret()
        ipdom = immediate_post_dominators(fn)
        assert ipdom[a] is b_blk
        assert ipdom[b_blk] is c
        assert ipdom[c] is None
