"""End-to-end integration tests: the full Figure 1 workflow.

Covers the complete toolchain path -- DSL -> IR -> optimization ->
instrumentation -> PTX/fatbin -> simulated execution -> profiles ->
analyses -> advice -- and cross-checks between independent components
(trace-derived metrics vs simulator-level counters).
"""

import numpy as np
import pytest

from repro import CUDAAdvisor, CudaRuntime, Device, KEPLER_K40C
from repro.analysis.divergence_memory import memory_divergence_analysis
from repro.apps import build_app
from repro.backend.fatbin import build_fatbin
from repro.frontend.dsl import compile_kernels
from repro.ir import parse_module, print_module, verify_module
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession


class TestToolchainRoundTrip:
    def test_instrumented_module_survives_text_roundtrip(self):
        """Compile -> optimize -> instrument -> print -> parse -> run:
        the re-parsed module must execute identically (the on-disk .ll
        workflow around opt)."""
        app = build_app("nn", num_records=256)
        module = compile_kernels(list(app.kernels), "nn")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory", "blocks"]).run(module)
        reparsed = parse_module(print_module(module))
        verify_module(reparsed)

        outputs = []
        for mod in (module, reparsed):
            dev = Device(KEPLER_K40C)
            session = ProfilingSession()
            rt = CudaRuntime(dev, profiler=session)
            image = dev.load_module(mod)
            state = app.prepare(rt)
            app.run(rt, image, state)
            assert app.check(rt, state)
            out = dev.memcpy_dtoh(state["d_distances"], np.float32, 256)
            outputs.append((out, len(session.last_profile.memory_records)))
        assert np.array_equal(outputs[0][0], outputs[1][0])
        assert outputs[0][1] == outputs[1][1]

    def test_fatbin_ptx_generated_for_instrumented_code(self):
        app = build_app("hotspot", n=32, steps=1)
        module = compile_kernels(list(app.kernels), "hotspot")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        fat = build_fatbin(module, ["3.5", "6.0"])
        assert "call.uni Record" in fat.best_image("6.0")


class TestCrossValidation:
    """Trace-derived analysis results must agree with independent
    simulator-level measurements of the same quantities."""

    @pytest.fixture(scope="class")
    def run(self):
        app = build_app("bicg", nx=64, ny=64)
        module = compile_kernels(list(app.kernels), "bicg")
        optimization_pipeline().run(module)
        baseline = compile_kernels(list(app.kernels), "bicg-base")
        optimization_pipeline().run(baseline)
        instrumentation_pipeline(["memory", "blocks"]).run(module)

        session = ProfilingSession()
        dev = Device(KEPLER_K40C)
        rt = CudaRuntime(dev, profiler=session)
        image = dev.load_module(module)
        state = app.prepare(rt)
        instrumented_results = app.run(rt, image, state)
        assert app.check(rt, state)

        dev0 = Device(KEPLER_K40C)
        rt0 = CudaRuntime(dev0)
        image0 = dev0.load_module(baseline)
        state0 = app.prepare(rt0)
        baseline_results = app.run(rt0, image0, state0)
        return app, session, baseline_results, instrumented_results

    def test_trace_transactions_match_simulator(self, run):
        """Sum of per-access unique-line counts from the *trace* must
        equal the coalescer's transaction count for the same accesses
        (both kernels only do global loads/stores)."""
        app, session, baseline_results, _ = run
        trace_transactions = 0
        for profile in session.profiles:
            md = memory_divergence_analysis(profile, 128)
            trace_transactions += sum(
                k * v for k, v in md.counts.items()
            )
        simulator_transactions = sum(
            r.transactions for r in baseline_results
        )
        assert trace_transactions == simulator_transactions

    def test_divergent_branch_counts_consistent(self, run):
        """The trace-level divergent-block count and the hardware-level
        divergent-branch counter must agree in sign (both zero for the
        branch-free bicg kernels)."""
        app, session, baseline_results, instrumented = run
        trace_divergent = sum(
            1
            for profile in session.profiles
            for record in profile.block_records
            if record.divergent
        )
        hw_divergent = sum(r.divergent_branches for r in baseline_results)
        assert trace_divergent == 0
        assert hw_divergent == 0

    def test_instrumentation_only_adds_cost(self, run):
        app, session, baseline_results, instrumented = run
        assert sum(r.instructions for r in instrumented) > sum(
            r.instructions for r in baseline_results
        )
        assert sum(r.cycles for r in instrumented) > sum(
            r.cycles for r in baseline_results
        )


class TestAdvisorMultiKernelApps:
    def test_srad_two_kernels_profiled_separately(self):
        advisor = CUDAAdvisor(
            arch=KEPLER_K40C, modes=("memory",), measure_overhead=False
        )
        report = advisor.profile(build_app("srad_v2", n=32, iterations=2))
        kernels = {p.kernel for p in report.session.profiles}
        assert kernels == {"srad_cuda_1", "srad_cuda_2"}
        # Two iterations -> two instances of each kernel.
        assert len(report.session.profiles) == 4

    def test_bfs_iterative_host_loop(self):
        advisor = CUDAAdvisor(
            arch=KEPLER_K40C, modes=("memory",), measure_overhead=False
        )
        report = advisor.profile(build_app("bfs", num_nodes=512))
        # The frontier loop launches Kernel and Kernel2 per level.
        k1 = [p for p in report.session.profiles if p.kernel == "bfs_kernel"]
        k2 = [p for p in report.session.profiles if p.kernel == "bfs_kernel2"]
        assert len(k1) == len(k2)
        assert len(k1) >= 3  # at least a few BFS levels
