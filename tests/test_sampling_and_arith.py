"""Tests for trace sampling and the arithmetic analyzer."""

import numpy as np
import pytest

from repro.analysis.arithmetic import arithmetic_analysis, bytes_accessed
from repro.analysis.divergence_memory import memory_divergence_analysis
from repro.errors import ProfilerError
from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import HookRuntime, ProfilingSession
from tests.conftest import KERNELS


def _run_profiled(sample_rate=1, kernel="strided_sum", modes=("memory", "arith")):
    module = compile_kernels([KERNELS[kernel]], "m")
    optimization_pipeline().run(module)
    instrumentation_pipeline(list(modes)).run(module)
    session = ProfilingSession(sample_rate=sample_rate)
    dev = Device(KEPLER_K40C)
    rt = CudaRuntime(dev, profiler=session)
    image = dev.load_module(module)
    data = np.arange(256, dtype=np.float32)
    dx = rt.cuda_malloc(data.nbytes, "x")
    do = rt.cuda_malloc(4 * 64, "o")
    rt.cuda_memcpy_htod(dx, data)
    rt.launch_kernel(image, "strided_sum", 1, 64, [dx, do, 256, 3])
    return session.last_profile


class TestSampling:
    def test_rate_one_records_everything(self):
        full = _run_profiled(sample_rate=1)
        sampled = _run_profiled(sample_rate=4)
        assert len(sampled.memory_records) < len(full.memory_records)
        # Every-4th sampling keeps roughly a quarter of the events.
        ratio = len(sampled.memory_records) / len(full.memory_records)
        assert 0.15 < ratio < 0.35

    def test_sampled_divergence_distribution_approximates_full(self):
        full = memory_divergence_analysis(_run_profiled(1), 128)
        sampled = memory_divergence_analysis(_run_profiled(4), 128)
        # The kernel's accesses are homogeneous; the degree survives
        # sampling almost exactly.
        assert sampled.divergence_degree == pytest.approx(
            full.divergence_degree, rel=0.15
        )

    def test_invalid_rate_rejected(self):
        with pytest.raises(ProfilerError):
            HookRuntime(None, "k", (), "x", sample_rate=0)


class TestArithmeticAnalysis:
    def test_flop_counting(self):
        profile = _run_profiled(sample_rate=1)
        arith = arithmetic_analysis(profile)
        assert arith.lane_flops > 0  # the fadd accumulation
        assert arith.lane_intops > 0  # index arithmetic
        assert 0.0 < arith.float_fraction < 1.0
        assert "fadd" in arith.by_opcode
        assert arith.by_opcode["fadd"] > 0

    def test_intensity(self):
        profile = _run_profiled(sample_rate=1)
        arith = arithmetic_analysis(profile)
        nbytes = bytes_accessed(profile)
        assert nbytes > 0
        assert arith.arithmetic_intensity(nbytes) == pytest.approx(
            arith.lane_operations / nbytes
        )
        assert arith.arithmetic_intensity(0) == 0.0

    def test_per_line_attribution(self):
        profile = _run_profiled(sample_rate=1)
        arith = arithmetic_analysis(profile)
        # All attributed lines come from the conftest source.
        assert arith.by_line
        assert all(line > 0 for line in arith.by_line)
