"""Rendering and advice-path tests for the AdvisorReport."""

import pytest

from repro.analysis.divergence_branch import BranchDivergenceProfile
from repro.analysis.divergence_memory import MemoryDivergenceProfile
from repro.analysis.reuse_distance import (
    ReuseDistanceHistogram,
    ReuseDistanceModel,
)
from repro.gpu.arch import KEPLER_K40C
from repro.optim.advisor import AdvisorReport
from repro.optim.bypass_model import BypassPrediction
from repro.profiler.records import BlockRecord
from repro.profiler.session import ProfilingSession


def _report(**overrides):
    base = dict(
        program="toy",
        arch=KEPLER_K40C,
        modes=("memory",),
        session=ProfilingSession(),
        baseline_results=[],
        instrumented_results=[],
    )
    base.update(overrides)
    return AdvisorReport(**base)


def _hist(no_reuse_samples, short_samples):
    h = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
    for _ in range(no_reuse_samples):
        h.add_sample(-1)
    for _ in range(short_samples):
        h.add_sample(1)
    return h


def _md(degree_value, count=10):
    md = MemoryDivergenceProfile(line_size=128)
    for _ in range(count):
        md.add(degree_value)
    return md


def _bd(divergent, total):
    bd = BranchDivergenceProfile()
    for i in range(total):
        bd.add(BlockRecord(
            seq=i, cta=0, warp_in_cta=0, block_name="k:entry", line=1,
            col=1, active_lanes=(4 if i < divergent else 32),
            resident_lanes=32, call_path_id=0,
        ))
    return bd


class TestAdviceBranches:
    def test_streaming_advice(self):
        report = _report(reuse_element=_hist(95, 5))
        assert any("streaming" in t for t in report.advice())

    def test_moderate_no_reuse_suggests_bypassing(self):
        report = _report(reuse_element=_hist(60, 40))
        assert any("bypassing is likely to help" in t
                   for t in report.advice())

    def test_divergence_advice(self):
        report = _report(memory_divergence=_md(16))
        assert any("coalescing" in t for t in report.advice())

    def test_branch_divergence_advice_names_block(self):
        report = _report(branch_divergence=_bd(5, 10))
        tips = report.advice()
        assert any("k:entry" in t for t in tips)

    def test_bypass_advice(self):
        pred = BypassPrediction(
            optimal_warps=2, raw_value=2.4, avg_reuse_distance=4.0,
            divergence_degree=8.0, ctas_per_sm=4, l1_size=16384,
            line_size=128, warps_per_cta=8,
        )
        report = _report(bypass_prediction=pred)
        assert any("2 of 8 warps" in t for t in report.advice())

    def test_clean_program_gets_no_findings(self):
        report = _report(
            reuse_element=_hist(5, 95),
            memory_divergence=_md(1),
            branch_divergence=_bd(0, 10),
        )
        tips = report.advice()
        assert len(tips) == 1
        assert "no significant bottleneck" in tips[0]


class TestToDict:
    def test_minimal_report(self):
        data = _report().to_dict()
        assert data["program"] == "toy"
        assert data["arch"]["chip"] == "Tesla K40c"
        assert "reuse_element" not in data
        assert data["advice"]

    def test_full_report_keys(self):
        report = _report(
            reuse_element=_hist(50, 50),
            reuse_cache_line=_hist(10, 90),
            memory_divergence=_md(4),
            branch_divergence=_bd(1, 4),
        )
        data = report.to_dict()
        assert set(data["reuse_element"]) == {
            "frequencies", "no_reuse_fraction", "average_finite_distance",
            "samples",
        }
        assert data["branch_divergence"]["percent"] == pytest.approx(25.0)
        assert data["memory_divergence"]["degree"] == pytest.approx(4.0)
