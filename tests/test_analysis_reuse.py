"""Tests for the reuse-distance analyzer, including property-based
verification against a naive quadratic reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse_distance import (
    INFINITE,
    PAPER_BUCKETS,
    ReuseDistanceHistogram,
    ReuseDistanceModel,
    reuse_distance_analysis,
    reuse_distances_of_trace,
)
from repro.profiler.records import MemoryAccessRecord, MemoryOp


def naive_reuse_distances(events, write_restart=True, reads_only=True):
    """O(n^2) reference: distinct elements between consecutive uses."""
    samples = []
    for t, (element, is_write) in enumerate(events):
        if is_write and reads_only:
            continue
        prev = None
        for s in range(t - 1, -1, -1):
            if events[s][0] == element:
                prev = s
                break
        if prev is None:
            samples.append(INFINITE)
            continue
        if write_restart and events[prev][1]:
            samples.append(INFINITE)
            continue
        distinct = {events[s][0] for s in range(prev + 1, t)}
        samples.append(len(distinct))
    return samples


class TestAgainstPaperExample:
    def test_abccdefaaab_sequence(self):
        """The paper's worked example: in ABCCDEFAAAB the reuse distance
        of (the second) B is 5."""
        seq = "ABCCDEFAAAB"
        events = [(ord(c), False) for c in seq]
        distances = reuse_distances_of_trace(events, write_restart=False)
        # The last access (B) must have distance 5.
        assert distances[-1] == 5
        # And C's immediate reuse has distance 0.
        assert distances[3] == 0

    def test_write_restart_rule(self):
        """Read A, write A, read A: the second read must be INFINITE
        (write-evict L1 cannot serve it), and reuse restarts after."""
        events = [(1, False), (1, True), (1, False), (1, False)]
        distances = reuse_distances_of_trace(events, write_restart=True)
        assert distances == [INFINITE, INFINITE, 0]

    def test_classic_mode_ignores_writes(self):
        events = [(1, False), (1, True), (1, False)]
        distances = reuse_distances_of_trace(events, write_restart=False)
        assert distances == [INFINITE, 0]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12), st.booleans()
            ),
            max_size=120,
        ),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_reference(self, events, write_restart):
        fast = reuse_distances_of_trace(events, write_restart=write_restart)
        slow = naive_reuse_distances(events, write_restart=write_restart)
        assert fast == slow

    @given(st.lists(st.integers(min_value=0, max_value=8), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_sample_count_equals_reads(self, elements):
        events = [(e, False) for e in elements]
        assert len(reuse_distances_of_trace(events)) == len(events)

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_infinite_count_equals_distinct_elements(self, elements):
        """With no writes, exactly the first touch of each element is ∞."""
        events = [(e, False) for e in elements]
        distances = reuse_distances_of_trace(events)
        assert distances.count(INFINITE) == len(set(elements))

    @given(st.lists(st.integers(min_value=0, max_value=6), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_distance_bounded_by_alphabet(self, elements):
        events = [(e, False) for e in elements]
        for d in reuse_distances_of_trace(events):
            if d != INFINITE:
                assert 0 <= d < 7


class TestHistogram:
    def test_bucketing(self):
        h = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        for d in (0, 1, 2, 3, 8, 9, 32, 33, 128, 129, 512, 513, 100000,
                  INFINITE):
            h.add_sample(d)
        assert h.bucket_counts == [1, 2, 2, 2, 2, 2, 2]
        assert h.infinite == 1
        assert h.samples == 14

    def test_frequencies_sum_to_one(self):
        h = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        for d in (0, 5, INFINITE, 600):
            h.add_sample(d)
        assert sum(h.frequencies.values()) == pytest.approx(1.0)

    def test_average_over_finite_only(self):
        h = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        h.add_sample(10)
        h.add_sample(20)
        h.add_sample(INFINITE)
        assert h.average_distance == 15.0
        assert h.no_reuse_fraction == pytest.approx(1 / 3)

    def test_merge_model_mismatch_rejected(self):
        from repro.errors import AnalysisError

        a = ReuseDistanceHistogram(model=ReuseDistanceModel.ELEMENT)
        b = ReuseDistanceHistogram(model=ReuseDistanceModel.CACHE_LINE)
        with pytest.raises(AnalysisError):
            a.merge(b)


def _record(seq, cta, addrs, op=MemoryOp.LOAD, bits=32):
    addresses = np.zeros(32, dtype=np.int64)
    mask = np.zeros(32, dtype=bool)
    for i, a in enumerate(addrs):
        addresses[i] = a
        mask[i] = True
    return MemoryAccessRecord(
        seq=seq, cta=cta, warp_in_cta=0, addresses=addresses, mask=mask,
        bits=bits, line=1, col=1, op=op, call_path_id=0,
    )


class _FakeProfile:
    def __init__(self, records):
        self.memory_records = records

    def memory_records_by_cta(self):
        grouped = {}
        for r in self.memory_records:
            grouped.setdefault(r.cta, []).append(r)
        return grouped


class TestProfileLevelAnalysis:
    def test_per_cta_regrouping(self):
        """Accesses of different CTAs are independent streams: an address
        shared by two CTAs is a first touch (∞) in each."""
        records = [
            _record(0, cta=0, addrs=[4096]),
            _record(1, cta=1, addrs=[4096]),
            _record(2, cta=0, addrs=[4096]),
        ]
        hist = reuse_distance_analysis(_FakeProfile(records))
        assert hist.infinite == 2 + 32 - 32  # one ∞ per CTA... see below
        # Explicitly: cta0 sees [a, a] -> [inf, 0]; cta1 sees [a] -> [inf].
        assert hist.bucket_counts[0] == 1  # the distance-0 reuse
        assert hist.infinite == 2

    def test_cache_line_model_merges_neighbors(self):
        # Two addresses in the same 128B line: element model sees two
        # elements; line model sees a distance-0 reuse.
        records = [
            _record(0, cta=0, addrs=[4096]),
            _record(1, cta=0, addrs=[4100]),
        ]
        element = reuse_distance_analysis(
            _FakeProfile(records), model=ReuseDistanceModel.ELEMENT
        )
        line = reuse_distance_analysis(
            _FakeProfile(records), model=ReuseDistanceModel.CACHE_LINE,
            line_size=128,
        )
        assert element.infinite == 2
        assert line.infinite == 1
        assert line.bucket_counts[0] == 1

    def test_lane_order_within_warp(self):
        # One warp access touching [a, b, a]: lanes serialize in lane
        # order, so the second a has distance 1 (b intervenes).
        records = [_record(0, cta=0, addrs=[4096, 8192, 4096])]
        hist = reuse_distance_analysis(_FakeProfile(records))
        assert hist.bucket_counts[1] == 1  # bucket "1-2"

    def test_stores_restart_but_do_not_sample(self):
        records = [
            _record(0, cta=0, addrs=[4096]),
            _record(1, cta=0, addrs=[4096], op=MemoryOp.STORE),
            _record(2, cta=0, addrs=[4096]),
        ]
        hist = reuse_distance_analysis(_FakeProfile(records))
        # Two reads sampled; both ∞ (first touch, killed-by-write).
        assert hist.samples == 2
        assert hist.infinite == 2
