"""Tests for the PC-sampling baseline and its comparison with
instrumentation-based profiling (the paper's Section 1 argument)."""

import numpy as np
import pytest

from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import HookRuntime
from repro.profiler.pc_sampling import (
    PCSampler,
    coverage_vs_instrumentation,
)
from tests.conftest import KERNELS


def _launch(module, sampler=None, hooks=None):
    dev = Device(KEPLER_K40C)
    img = dev.load_module(module)
    data = np.arange(256, dtype=np.float32)
    dx = dev.malloc(data.nbytes)
    do = dev.malloc(4 * 64)
    dev.memcpy_htod(dx, data)
    dev.launch(img, "strided_sum", 1, 64, [dx, do, 256, 3],
               pc_sampler=sampler, hooks=hooks)
    return img


class TestPCSampler:
    def test_collects_samples(self):
        module = compile_kernels([KERNELS["strided_sum"]], "m")
        optimization_pipeline().run(module)
        sampler = PCSampler(period=16)
        _launch(module, sampler)
        profile = sampler.profile
        assert profile.total_samples > 0
        assert all(fn == "strided_sum" for fn, _ in profile.sites())
        assert profile.hottest(1)[0][1] >= 1

    def test_period_controls_density(self):
        module = compile_kernels([KERNELS["strided_sum"]], "m")
        optimization_pipeline().run(module)
        dense, sparse = PCSampler(period=4), PCSampler(period=64)
        _launch(module, dense)
        _launch(module, sparse)
        assert dense.profile.total_samples > sparse.profile.total_samples
        ratio = sparse.profile.total_samples / dense.profile.total_samples
        assert ratio < 0.25

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            PCSampler(period=0)

    def test_sampling_is_sparse_vs_instrumentation(self):
        """The paper's point: PC sampling gives *sparse* insight while
        instrumentation observes every monitored instruction. A very
        sparse period must miss source lines that the Record() trace
        attributes events to."""
        module = compile_kernels([KERNELS["strided_sum"]], "m")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        hooks = HookRuntime(img, "strided_sum", (), "x")
        sampler = PCSampler(period=512)
        data = np.arange(256, dtype=np.float32)
        dx = dev.malloc(data.nbytes)
        do = dev.malloc(4 * 64)
        dev.memcpy_htod(dx, data)
        dev.launch(img, "strided_sum", 1, 64, [dx, do, 256, 3],
                   hooks=hooks, pc_sampler=sampler)
        stats = coverage_vs_instrumentation(sampler.profile, hooks.profile)
        # Instrumentation sees every access site; sparse sampling some.
        assert stats["instrumented_sites"] >= 2
        assert 0.0 <= stats["line_coverage"] <= 1.0

    def test_dense_sampling_converges_to_full_coverage(self):
        module = compile_kernels([KERNELS["strided_sum"]], "m")
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        hooks = HookRuntime(img, "strided_sum", (), "x")
        sampler = PCSampler(period=1)  # sample everything
        data = np.arange(256, dtype=np.float32)
        dx = dev.malloc(data.nbytes)
        do = dev.malloc(4 * 64)
        dev.memcpy_htod(dx, data)
        dev.launch(img, "strided_sum", 1, 64, [dx, do, 256, 3],
                   hooks=hooks, pc_sampler=sampler)
        stats = coverage_vs_instrumentation(sampler.profile, hooks.profile)
        assert stats["line_coverage"] == 1.0
