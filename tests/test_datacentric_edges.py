"""Edge cases of the data-centric map: repeated transfers, partial
copies, device-to-host-only objects."""

import numpy as np
import pytest

from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime, MemcpyKind
from repro.profiler import ProfilingSession


@pytest.fixture
def rt():
    session = ProfilingSession()
    return CudaRuntime(Device(KEPLER_K40C), profiler=session), session


class TestTransferResolution:
    def test_latest_transfer_wins(self, rt):
        """A buffer refilled from a different host object must resolve to
        the most recent HtoD copy (the paper's data-flow reconstruction
        follows the object's lifetime)."""
        runtime, session = rt
        a = runtime.host_malloc(8, np.float32, "h_a")
        b = runtime.host_malloc(8, np.float32, "h_b")
        d = runtime.cuda_malloc(32, "d_x")
        runtime.cuda_memcpy_htod(d, a)
        runtime.cuda_memcpy_htod(d, b)
        view = session.data_centric_map().resolve(d.addr + 4)
        assert view.host is b

    def test_partial_transfer_offsets(self, rt):
        """Transfers into a sub-range only cover their bytes."""
        runtime, session = rt
        h = runtime.host_malloc(4, np.float32, "h_part")
        d = runtime.cuda_malloc(64, "d_big")
        runtime.cuda_memcpy_htod(d.offset(16), h)
        dc = session.data_centric_map()
        covered = dc.resolve(d.addr + 20)
        uncovered = dc.resolve(d.addr + 4)
        assert covered.transfer is not None
        assert covered.host is h
        assert uncovered.transfer is None
        assert uncovered.host is None
        # Both addresses still resolve to the same device object.
        assert covered.device is uncovered.device

    def test_offset_inside_host_object(self, rt):
        runtime, session = rt
        h = runtime.host_malloc(16, np.float32, "h_x")
        d = runtime.cuda_malloc(64, "d_x")
        runtime.cuda_memcpy_htod(d, h)
        view = session.data_centric_map().resolve(d.addr + 40)
        # Device offset 40 maps to host offset 40 of the same buffer.
        assert view.host is h

    def test_dtoh_never_used_for_provenance(self, rt):
        """Reading results back (DtoH) must not make the destination
        look like the *source* of the device data."""
        runtime, session = rt
        h_in = runtime.host_malloc(8, np.float32, "h_in")
        h_out = runtime.host_malloc(8, np.float32, "h_out")
        d = runtime.cuda_malloc(32, "d_x")
        runtime.cuda_memcpy_htod(d, h_in)
        runtime.cuda_memcpy_dtoh(h_out, d)
        view = session.data_centric_map().resolve(d.addr)
        assert view.host is h_in

    def test_device_only_object(self, rt):
        """A scratch buffer never touched by memcpy has no host
        counterpart, but its allocation call path still renders."""
        runtime, session = rt
        d = runtime.cuda_malloc(128, "d_scratch")
        view = session.data_centric_map().resolve(d.addr + 8)
        assert view.device is not None
        assert view.host is None
        assert view.transfer is None
        assert "d_scratch" in view.render()


class TestKindBookkeeping:
    def test_kinds_recorded(self, rt):
        runtime, session = rt
        h = runtime.host_malloc(8, np.float32, "h")
        d = runtime.cuda_malloc(32, "d")
        runtime.cuda_memcpy_htod(d, h)
        runtime.cuda_memcpy_dtoh(h, d)
        kinds = [r.kind for r in session.memcpys]
        assert kinds == [
            MemcpyKind.HOST_TO_DEVICE, MemcpyKind.DEVICE_TO_HOST,
        ]
