"""Tests for the reuse-theory cache model, including the differential
property against the simulated cache: for a fully-associative LRU with
GPU write semantics, *hit iff stack distance < capacity* must hold on
arbitrary traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache_model import (
    hit_rate_curve,
    profile_stack_distances,
    recommend_l1_size,
    stack_distances,
)
from repro.analysis.reuse_distance import INFINITE
from repro.gpu.cache import SetAssociativeCache


class TestStackDistances:
    def test_simple_reuse(self):
        events = [(1, False), (2, False), (1, False)]
        assert stack_distances(events) == [INFINITE, INFINITE, 1]

    def test_write_evicts(self):
        events = [(1, False), (1, True), (1, False)]
        assert stack_distances(events) == [INFINITE, INFINITE]

    def test_write_to_other_line_leaves_hole(self):
        # read A, read B, WRITE B (evicts B), read A: the write frees a
        # way but a capacity-1 cache already evicted A when B was read,
        # so B's slot must still count -- distance 1, not 0.
        events = [(1, False), (2, False), (2, True), (1, False)]
        assert stack_distances(events)[-1] == 1

    def test_write_no_allocate(self):
        events = [(7, True), (7, False)]
        assert stack_distances(events) == [INFINITE]


class TestTheoremDifferential:
    @given(
        trace=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20), st.booleans()
            ),
            min_size=1,
            max_size=300,
        ),
        capacity=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=80, deadline=None)
    def test_hit_iff_stack_distance_below_capacity(self, trace, capacity):
        """The model and the cache simulator must agree access by
        access, for any interleaving of reads and write-evicts."""
        cache = SetAssociativeCache(capacity * 64, 64, capacity)
        assert cache.num_sets == 1  # fully associative
        distances = iter(stack_distances(trace))
        for line, is_write in trace:
            if is_write:
                cache.write(line)
            else:
                hit = cache.read(line)
                d = next(distances)
                expected = d != INFINITE and d < capacity
                assert hit == expected

    @given(
        trace=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_curve_matches_simulated_hit_rates(self, trace):
        events = [(line, False) for line in trace]
        distances = stack_distances(events)
        curve = hit_rate_curve(distances, [1, 4, 16, 64], line_size=64)
        for capacity, predicted in zip(curve.capacities, curve.hit_rates):
            cache = SetAssociativeCache(capacity * 64, 64, capacity)
            for line in trace:
                cache.read(line)
            simulated = cache.stats.read_hit_rate
            assert predicted == pytest.approx(simulated, abs=1e-12)


class TestCurveProperties:
    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(3)
        events = [(int(x), False) for x in rng.integers(0, 50, 500)]
        curve = hit_rate_curve(stack_distances(events), [1, 2, 4, 8, 16, 64])
        assert all(
            a <= b + 1e-12
            for a, b in zip(curve.hit_rates, curve.hit_rates[1:])
        )

    def test_rate_at_interpolates_conservatively(self):
        curve = hit_rate_curve([0, 1, 5, INFINITE], [2, 8])
        assert curve.rate_at(1) == 0.0  # below the smallest capacity
        assert curve.rate_at(4) == curve.hit_rates[0]
        assert curve.rate_at(100) == curve.hit_rates[1]

    def test_render(self):
        curve = hit_rate_curve([0, INFINITE], [16], line_size=128)
        text = curve.render("(syrk)")
        assert "2.0 KB" in text
        assert "50.0%" in text


class TestRecommendation:
    def _profile(self, app_name, **kwargs):
        from repro.apps import build_app
        from repro.frontend.dsl import compile_kernels
        from repro.gpu import Device, KEPLER_K40C
        from repro.host import CudaRuntime
        from repro.passes import (
            instrumentation_pipeline,
            optimization_pipeline,
        )
        from repro.profiler import ProfilingSession

        app = build_app(app_name, **kwargs)
        module = compile_kernels(list(app.kernels), app_name)
        optimization_pipeline().run(module)
        instrumentation_pipeline(["memory"]).run(module)
        session = ProfilingSession()
        dev = Device(KEPLER_K40C)
        rt = CudaRuntime(dev, profiler=session)
        image = dev.load_module(module)
        state = app.prepare(rt)
        app.run(rt, image, state)
        return session.profiles[0]

    def test_flat_curve_recommends_smallest_capacity(self):
        """nn's only locality is intra-warp spatial reuse (lanes sharing
        a line), which the tiniest cache already captures: the curve is
        flat, so the smallest candidate capacity suffices -- the
        "insensitive to L1 sizing" verdict."""
        profile = self._profile("nn", num_records=1024)
        rec = recommend_l1_size(profile)
        assert rec.recommended_lines == rec.curve.capacities[0]
        spread = rec.curve.max_rate - rec.curve.hit_rates[0]
        assert spread < 0.01

    def test_reusing_kernel_wants_capacity(self):
        profile = self._profile("syrk", n=32, m=32)
        rec = recommend_l1_size(profile)
        assert rec.curve.max_rate > 0.5
        assert rec.recommended_lines > rec.curve.capacities[0]
        assert "KB" in rec.render()
