"""Tests for the L1 cache model and MSHR file, including the GPU
write-evict / write-no-allocate semantics the reuse-distance analysis
leans on, plus hypothesis properties against a brute-force LRU model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import CacheStats, MSHRFile, SetAssociativeCache
from repro.gpu.coalescing import coalesce, divergence_degree


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, 128, 4)
        assert not c.read(0)
        assert c.read(0)
        assert c.stats.read_hits == 1
        assert c.stats.read_misses == 1

    def test_lru_eviction_order(self):
        # 2 lines capacity in one set: direct test of LRU.
        c = SetAssociativeCache(256, 128, 2)  # 2 lines, 1 set
        c.read(0)
        c.read(1)
        c.read(0)  # 0 becomes MRU
        c.read(2)  # evicts 1 (LRU)
        assert c.contains(0)
        assert not c.contains(1)

    def test_write_evict(self):
        c = SetAssociativeCache(1024, 128, 4)
        c.read(5)
        assert c.contains(5)
        assert c.write(5)  # write hit evicts
        assert not c.contains(5)
        assert c.stats.write_hits == 1

    def test_write_no_allocate(self):
        c = SetAssociativeCache(1024, 128, 4)
        assert not c.write(9)
        assert not c.contains(9)
        assert c.stats.write_misses == 1

    def test_bypass_leaves_no_trace(self):
        c = SetAssociativeCache(1024, 128, 4)
        c.read(3, bypass=True)
        assert not c.contains(3)
        assert c.stats.bypassed == 1
        assert c.stats.reads == 0

    def test_set_mapping(self):
        c = SetAssociativeCache(1024, 128, 1)  # 8 sets, direct-mapped
        c.read(0)
        c.read(8)  # same set (8 % 8 == 0): evicts 0
        assert not c.contains(0)
        c.read(1)  # different set: both coexist
        assert c.contains(1)
        assert c.contains(8)

    def test_flush(self):
        c = SetAssociativeCache(1024, 128, 4)
        for i in range(8):
            c.read(i)
        c.flush()
        assert c.resident_lines == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 128, 4)

    def test_stats_merge(self):
        a, b = CacheStats(read_hits=1, read_misses=2), CacheStats(read_hits=3)
        a.merge(b)
        assert a.read_hits == 4
        assert a.reads == 6


class TestFullyAssociativeProperty:
    """Fully-associative LRU: hit iff (backward) reuse distance < capacity.

    This is the classic stack-distance theorem; the reuse-distance
    analyzer and the cache model must agree on it.
    """

    @given(
        trace=st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                       max_size=300),
        capacity=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_hit_iff_distance_below_capacity(self, trace, capacity):
        cache = SetAssociativeCache(capacity * 64, 64, capacity)  # 1 set
        assert cache.num_sets == 1
        last_seen = {}
        stack = []  # LRU order, front oldest
        for t, line in enumerate(trace):
            if line in stack:
                distance = len(stack) - 1 - stack.index(line)
                expected_hit = distance < capacity
            else:
                expected_hit = False
            got_hit = cache.read(line)
            assert got_hit == expected_hit
            if line in stack:
                stack.remove(line)
            stack.append(line)
            if len(stack) > capacity:
                stack.pop(0)


class TestMSHR:
    def test_merge_outstanding(self):
        m = MSHRFile(4)
        assert m.request(1, now=0, latency=100)
        assert m.request(1, now=10, latency=100)
        assert m.merges == 1
        assert m.occupancy == 1

    def test_allocation_failure_when_full(self):
        m = MSHRFile(2)
        assert m.request(1, now=0, latency=100)
        assert m.request(2, now=0, latency=100)
        assert not m.request(3, now=0, latency=100)
        assert m.allocation_failures == 1

    def test_entries_retire_over_time(self):
        m = MSHRFile(2)
        m.request(1, now=0, latency=100)
        m.request(2, now=0, latency=100)
        # At t=150 both fills returned: new allocations succeed.
        assert m.request(3, now=150, latency=100)
        assert m.request(4, now=150, latency=100)
        assert m.allocation_failures == 0

    def test_failure_rate(self):
        m = MSHRFile(1)
        m.request(1, now=0, latency=100)
        m.request(2, now=1, latency=100)
        assert m.failure_rate == pytest.approx(0.5)


class TestCoalescing:
    def test_fully_coalesced(self):
        addrs = np.arange(32, dtype=np.int64) * 4  # 128 contiguous bytes
        mask = np.ones(32, dtype=bool)
        assert divergence_degree(addrs, mask, 4, 128) == 1

    def test_fully_divergent(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        mask = np.ones(32, dtype=bool)
        assert divergence_degree(addrs, mask, 4, 128) == 32

    def test_line_size_matters(self):
        addrs = np.arange(32, dtype=np.int64) * 4
        mask = np.ones(32, dtype=bool)
        assert divergence_degree(addrs, mask, 4, 32) == 4  # Pascal sectors

    def test_masked_lanes_ignored(self):
        addrs = np.arange(32, dtype=np.int64) * 128
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert divergence_degree(addrs, mask, 4, 128) == 1
        assert len(coalesce(addrs, np.zeros(32, dtype=bool), 4, 128)) == 0

    def test_straddling_access_counts_both_lines(self):
        addrs = np.array([126] + [0] * 31, dtype=np.int64)
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert divergence_degree(addrs, mask, 4, 128) == 2

    @given(
        offsets=st.lists(
            st.integers(min_value=0, max_value=4096), min_size=32, max_size=32
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_set(self, offsets):
        addrs = np.asarray(offsets, dtype=np.int64) * 4
        mask = np.ones(32, dtype=bool)
        naive = set()
        for a in addrs:
            naive.add(a // 128)
            naive.add((a + 3) // 128)
        assert divergence_degree(addrs, mask, 4, 128) == len(naive)
