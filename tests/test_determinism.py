"""Reproducibility: identical configurations must produce bit-identical
traces, analyses and cycle counts across runs (the property that makes
the benchmark harnesses regenerable)."""

import numpy as np
import pytest

from repro.analysis.divergence_branch import branch_divergence_analysis
from repro.analysis.reuse_distance import reuse_distance_analysis
from repro.apps import build_app
from repro.frontend.dsl import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession


def _profiled_run(app_name, **kwargs):
    app = build_app(app_name, **kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks"]).run(module)
    session = ProfilingSession()
    dev = Device(KEPLER_K40C)
    rt = CudaRuntime(dev, profiler=session)
    image = dev.load_module(module)
    state = app.prepare(rt)
    results = app.run(rt, image, state)
    return session, results


@pytest.mark.parametrize("app_name,kwargs", [
    ("nn", {"num_records": 512}),
    ("bfs", {"num_nodes": 256}),
    ("srad_v2", {"n": 32, "iterations": 1}),
])
def test_runs_are_bit_identical(app_name, kwargs):
    a_session, a_results = _profiled_run(app_name, **kwargs)
    b_session, b_results = _profiled_run(app_name, **kwargs)

    assert len(a_session.profiles) == len(b_session.profiles)
    for pa, pb in zip(a_session.profiles, b_session.profiles):
        assert len(pa.memory_records) == len(pb.memory_records)
        for ra, rb in zip(pa.memory_records, pb.memory_records):
            assert ra.cta == rb.cta
            assert ra.line == rb.line
            assert np.array_equal(ra.addresses, rb.addresses)
            assert np.array_equal(ra.mask, rb.mask)
        assert len(pa.block_records) == len(pb.block_records)

    assert [r.cycles for r in a_results] == [r.cycles for r in b_results]
    assert [r.instructions for r in a_results] == [
        r.instructions for r in b_results
    ]


def test_analyses_are_deterministic():
    a_session, _ = _profiled_run("srad_v2", n=32, iterations=1)
    b_session, _ = _profiled_run("srad_v2", n=32, iterations=1)
    for pa, pb in zip(a_session.profiles, b_session.profiles):
        assert (reuse_distance_analysis(pa).frequencies
                == reuse_distance_analysis(pb).frequencies)
        assert (branch_divergence_analysis(pa).divergence_percent
                == branch_divergence_analysis(pb).divergence_percent)


def test_different_seeds_differ():
    """Seeded inputs actually vary: same app, different seed, different
    addresses (guards against accidentally frozen RNG plumbing)."""
    a, _ = _profiled_run("bfs", num_nodes=256, seed=1)
    b, _ = _profiled_run("bfs", num_nodes=256, seed=2)
    a_counts = [len(p.memory_records) for p in a.profiles]
    b_counts = [len(p.memory_records) for p in b.profiles]
    assert a_counts != b_counts or any(
        not np.array_equal(ra.addresses, rb.addresses)
        for pa, pb in zip(a.profiles, b.profiles)
        for ra, rb in zip(pa.memory_records, pb.memory_records)
    )
