"""Tests for shared-memory-limited occupancy and bank-conflict timing."""

import numpy as np
import pytest

from repro.frontend import compile_kernels, f32, i32, kernel, ptr_f32
from repro.gpu import Device, KEPLER_K40C
from repro.gpu.interpreter import _bank_conflict_degree
from repro.passes import optimization_pipeline


class TestBankConflictDegree:
    def _addrs(self, values):
        a = np.zeros(32, dtype=np.int64)
        a[: len(values)] = values
        m = np.zeros(32, dtype=bool)
        m[: len(values)] = True
        return a, m

    def test_conflict_free_stride_one(self):
        addrs, mask = self._addrs([4 * i for i in range(32)])
        assert _bank_conflict_degree(addrs, mask) == 1

    def test_broadcast_is_free(self):
        addrs, mask = self._addrs([64] * 32)
        assert _bank_conflict_degree(addrs, mask) == 1

    def test_stride_two_two_way(self):
        addrs, mask = self._addrs([8 * i for i in range(32)])
        assert _bank_conflict_degree(addrs, mask) == 2

    def test_stride_32_worst_case(self):
        addrs, mask = self._addrs([128 * i for i in range(32)])
        assert _bank_conflict_degree(addrs, mask) == 32

    def test_inactive_warp(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert _bank_conflict_degree(addrs, np.zeros(32, dtype=bool)) == 1


@kernel
def k_stride_shared(out: ptr_f32, stride: i32):
    tile = shared(f32, 1024)
    t = tid_x
    tile[(t * stride) % 1024] = float(t)
    syncthreads()
    out[t] = tile[(t * stride) % 1024]


class TestBankConflictTiming:
    def _cycles(self, stride):
        module = compile_kernels([k_stride_shared], f"m{stride}")
        optimization_pipeline().run(module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        out = dev.malloc(4 * 32)
        result = dev.launch(img, "k_stride_shared", 1, 32, [out, stride])
        data = dev.memcpy_dtoh(out, np.float32, 32)
        assert np.array_equal(data, np.arange(32, dtype=np.float32))
        return result.cycles

    def test_strided_access_costs_more(self):
        # Stride 32 words hits one bank 32 ways; stride 1 is clean.
        assert self._cycles(32) > self._cycles(1)


@kernel
def k_shared_heavy(out: ptr_f32):
    tile = shared(f32, 8192)  # 32 KB per CTA
    t = tid_x
    tile[t] = float(t)
    syncthreads()
    out[ctaid_x * ntid_x + t] = tile[t]


class TestSharedLimitedOccupancy:
    def test_residency_capped_by_shared_memory(self):
        """48 KB/SM with 32 KB/CTA arenas: one CTA resident at a time.
        Observable through the latency-hiding factor: fewer co-resident
        warps hide less latency, so cycles rise vs a small-arena kernel
        with identical instruction structure."""
        module = compile_kernels([k_shared_heavy], "m")
        optimization_pipeline().run(module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        assert img.shared_bytes_per_cta == 32 * 1024
        out = dev.malloc(4 * 32 * 16)
        result = dev.launch(img, "k_shared_heavy", 16, 32, [out])
        data = dev.memcpy_dtoh(out, np.float32, 32 * 16)
        expected = np.tile(np.arange(32, dtype=np.float32), 16)
        assert np.array_equal(data, expected)
        # One SM gets at most ceil(16/15)=2 CTAs; with the 32KB arena
        # only 1 can be resident -- execution stays correct regardless.
        assert result.num_ctas == 16
