"""Unit tests for the SM cycle cost model."""

import pytest

from repro.gpu.arch import KEPLER_K40C
from repro.gpu.timing import SMTimingModel, TimingParams


def _model(**params):
    return SMTimingModel(KEPLER_K40C, TimingParams(**params))


class TestLatencyHiding:
    def test_single_warp_hides_nothing(self):
        m = _model()
        m.set_resident_warps(1)
        m.global_transactions(hits=0, misses=1, bypasses=0)
        assert m.cycles == pytest.approx(KEPLER_K40C.l2_latency)

    def test_more_warps_hide_more(self):
        few, many = _model(), _model()
        few.set_resident_warps(2)
        many.set_resident_warps(16)
        few.global_transactions(0, 10, 0)
        many.global_transactions(0, 10, 0)
        assert many.cycles < few.cycles

    def test_hiding_saturates(self):
        a, b = _model(), _model()
        a.set_resident_warps(64)
        b.set_resident_warps(1024)
        a.global_transactions(0, 10, 0)
        b.global_transactions(0, 10, 0)
        assert a.cycles == pytest.approx(b.cycles)  # capped


class TestCostStructure:
    def test_hits_cheaper_than_misses(self):
        hit, miss = _model(), _model()
        hit.set_resident_warps(8)
        miss.set_resident_warps(8)
        hit.global_transactions(10, 0, 0)
        miss.global_transactions(0, 10, 0)
        assert hit.cycles < miss.cycles

    def test_miss_and_bypass_both_cost_l2(self):
        miss, bypass = _model(), _model()
        miss.global_transactions(0, 5, 0)
        bypass.global_transactions(0, 0, 5)
        assert miss.cycles == pytest.approx(bypass.cycles)

    def test_issue_cost(self):
        m = _model()
        for _ in range(10):
            m.issue()
        assert m.cycles == pytest.approx(10 * KEPLER_K40C.issue_cycles)

    def test_mshr_failure_stall(self):
        m = _model(mshr_fail_stall=60)
        m.mshr_failure(3)
        assert m.cycles == pytest.approx(180)

    def test_bank_conflicts_multiply_shared_cost(self):
        clean, conflicted = _model(), _model()
        clean.shared_access(1)
        conflicted.shared_access(8)
        assert conflicted.cycles == pytest.approx(8 * clean.cycles)

    def test_atomic_serialization(self):
        m = _model(atomic_cycles_per_lane=8)
        m.atomic(32)
        assert m.cycles == pytest.approx(256)

    def test_hook_cost_components(self):
        """The paper's three overhead sources each contribute."""
        p = TimingParams(hook_call_cycles=24, hook_lane_cycles=6,
                         hook_atomic_cycles=10)
        m = SMTimingModel(KEPLER_K40C, p)
        m.hook_call(lanes=32)
        assert m.cycles == pytest.approx(24 + 32 * 6 + 32 * 10)
        # An empty-mask hook still pays the call overhead.
        m2 = SMTimingModel(KEPLER_K40C, p)
        m2.hook_call(lanes=0)
        assert m2.cycles == pytest.approx(24)
