"""Tests for the Table 2 benchmark suite.

Every app is compiled, optimized, executed on the simulated GPU and
validated against its CPU reference (``check``) -- at reduced sizes so
the whole file stays fast. Table 2 metadata is asserted, and a couple
of paper-reported characteristics are spot-checked.
"""

import numpy as np
import pytest

from repro import CudaRuntime, Device, KEPLER_K40C
from repro.apps import APP_NAMES, TABLE2, app_info, build_app
from repro.apps.common import synthetic_bfs_graph
from repro.errors import ReproError
from repro.frontend.dsl import compile_kernels
from repro.passes import optimization_pipeline

#: Reduced-size build arguments per app, keeping shapes legal.
SMALL = {
    "backprop": dict(input_units=256),
    "bfs": dict(num_nodes=512),
    "hotspot": dict(n=32, steps=2),
    "lavaMD": dict(boxes1d=2, par_per_box=24),
    "nn": dict(num_records=512),
    "nw": dict(n=48),
    "srad_v2": dict(n=32, iterations=1),
    "bicg": dict(nx=64, ny=64),
    "syrk": dict(n=32, m=32),
    "syr2k": dict(n=32, m=32),
}


def _execute(name, optimize=True, **kwargs):
    app = build_app(name, **kwargs)
    module = compile_kernels(list(app.kernels), name)
    if optimize:
        optimization_pipeline().run(module)
    dev = Device(KEPLER_K40C)
    rt = CudaRuntime(dev)
    image = dev.load_module(module)
    state = app.prepare(rt)
    results = app.run(rt, image, state)
    return app, rt, state, results


class TestTable2Metadata:
    def test_all_ten_apps_present(self):
        assert len(TABLE2) == 10
        assert set(APP_NAMES) == {
            "backprop", "bfs", "hotspot", "lavaMD", "nn", "nw",
            "srad_v2", "bicg", "syrk", "syr2k",
        }

    def test_warps_per_cta_match_table2(self):
        expected = {
            "backprop": 8, "bfs": 16, "hotspot": 8, "lavaMD": 4, "nn": 8,
            "nw": 1, "srad_v2": 8, "bicg": 8, "syrk": 8, "syr2k": 8,
        }
        for name, warps in expected.items():
            assert app_info(name).warps_per_cta == warps
            assert build_app(name).warps_per_cta == warps

    def test_sources_match_table2(self):
        polybench = {"bicg", "syrk", "syr2k"}
        for info in TABLE2:
            expected = "Polybench" if info.name in polybench else "Rodinia"
            assert info.source == expected

    def test_unknown_app_rejected(self):
        with pytest.raises(ReproError, match="unknown app"):
            build_app("doom")


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_runs_and_validates(name):
    app, rt, state, results = _execute(name, **SMALL[name])
    assert results, f"{name} produced no launches"
    assert app.check(rt, state), f"{name} output mismatch vs CPU reference"


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_launch_geometry(name):
    app, rt, state, results = _execute(name, **SMALL[name])
    for result in results:
        assert result.warps_per_cta == app.warps_per_cta


class TestBFSGraph:
    def test_generator_structure(self):
        g = synthetic_bfs_graph(128, degree=6, seed=3)
        assert g.num_nodes == 128
        assert (g.num_edges == 6).all()
        assert len(g.edges) == 128 * 6
        assert g.edges.min() >= 0 and g.edges.max() < 128

    def test_cpu_bfs_reaches_everything(self):
        g = synthetic_bfs_graph(64, seed=1)
        costs = g.cpu_bfs_costs()
        assert (costs >= 0).all()  # ring edge guarantees connectivity
        assert costs[g.source] == 0

    def test_gpu_matches_cpu_on_multiple_seeds(self):
        for seed in (1, 2, 3):
            app = build_app("bfs", num_nodes=256, seed=seed)
            module = compile_kernels(list(app.kernels), f"bfs{seed}")
            optimization_pipeline().run(module)
            dev = Device(KEPLER_K40C)
            rt = CudaRuntime(dev)
            image = dev.load_module(module)
            state = app.prepare(rt)
            app.run(rt, image, state)
            assert app.check(rt, state)


class TestPaperCharacteristics:
    """Spot checks of Table 3 / Figure 4/5 qualitative facts at small
    scale (the full-size versions live in benchmarks/)."""

    def _profile(self, name, modes=("memory", "blocks"), **kwargs):
        from repro.optim.advisor import CUDAAdvisor

        advisor = CUDAAdvisor(
            arch=KEPLER_K40C, modes=modes, measure_overhead=False
        )
        return advisor.profile(build_app(name, **kwargs))

    def test_bicg_has_zero_branch_divergence(self):
        report = self._profile("bicg", **SMALL["bicg"])
        assert report.branch_divergence.divergence_percent == 0.0

    def test_nw_is_most_divergent(self):
        nw = self._profile("nw", **SMALL["nw"])
        nn = self._profile("nn", **SMALL["nn"])
        assert (
            nw.branch_divergence.divergence_percent
            > nn.branch_divergence.divergence_percent
        )
        assert nw.branch_divergence.divergence_percent > 40.0

    def test_bicg_bimodal_divergence(self):
        report = self._profile("bicg", modes=("memory",), **SMALL["bicg"])
        dist = report.memory_divergence.distribution
        # Kernel 2 is coalesced (1 line), kernel 1 strided (many lines).
        assert dist.get(1, 0) > 0.5
        assert max(dist) >= 16

    def test_nn_streaming(self):
        report = self._profile("nn", modes=("memory",), **SMALL["nn"])
        assert report.reuse_element.no_reuse_fraction > 0.99
