"""The versioned profile export: schema validity, round-trip, identity.

* **Round-trip**: export a profiled app, validate the document against
  the bundled JSON Schema (with the in-tree validator, cross-checked
  against the real ``jsonschema`` package when importable), reload the
  JSON and compare key metrics against the source ``AdvisorReport``.
* **Determinism**: the default document is byte-identical between the
  in-RAM and streaming drains (the contract downstream tools rely on);
  the opt-in ``runtime`` section is the only part allowed to differ.
* **CLI**: ``repro export`` writes a validating document,
  ``repro profile --format json`` emits the same document shape, the
  legacy ``--json`` summary still works, and ``--verbose`` renders the
  jit-cache / streaming sections even when empty (the satellite fix).
* **Validator**: the in-tree subset validator rejects documents that
  break type, required, enum, pattern and additional-property rules.
"""

import json

import pytest

from repro.apps import build_app
from repro.cli import main
from repro.export import (
    SCHEMA_VERSION,
    SchemaError,
    assemble_ndjson,
    export_json,
    iter_errors,
    load_schema,
    profile_export,
    profile_export_stream,
    validate,
)
from repro.optim.advisor import CUDAAdvisor

MODES = ("memory", "blocks", "arith")


def _profile(app="nn", streaming=False, **kwargs):
    advisor = CUDAAdvisor(
        modes=MODES,
        streaming_drain=streaming,
        heatmap=True,
        **kwargs,
    )
    return advisor.profile(build_app(app))


@pytest.fixture(scope="module")
def nn_report():
    return _profile("nn")


@pytest.fixture(scope="module")
def nn_doc(nn_report):
    return profile_export(nn_report)


class TestDocument:
    def test_validates_against_bundled_schema(self, nn_doc):
        assert list(iter_errors(nn_doc, load_schema())) == []
        validate(nn_doc)  # same, raising form

    def test_cross_check_with_real_jsonschema(self, nn_doc):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(nn_doc, load_schema())

    def test_round_trip_preserves_key_metrics(self, nn_report, nn_doc):
        doc = json.loads(export_json(nn_doc))
        assert doc == nn_doc  # canonical JSON is lossless
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["program"] == nn_report.program
        assert doc["modes"] == list(nn_report.modes)
        assert doc["advice"] == nn_report.advice()
        re_hist = nn_report.reuse_element
        assert doc["metrics"]["reuse_element"]["samples"] == re_hist.samples
        assert (
            doc["metrics"]["reuse_element"]["no_reuse_fraction"]
            == re_hist.no_reuse_fraction
        )
        md = nn_report.memory_divergence
        assert doc["metrics"]["memory_divergence"]["degree"] == (
            md.divergence_degree
        )
        assert doc["metrics"]["arithmetic"]["lane_flops"] == (
            nn_report.arithmetic.lane_flops
        )
        assert doc["metrics"]["bypass_prediction"]["optimal_warps"] == (
            nn_report.bypass_prediction.optimal_warps
        )
        assert doc["metrics"]["overhead"]["cycle_overhead"] == (
            nn_report.overhead.cycle_overhead
        )
        assert len(doc["kernels"]) == len(nn_report.session.profiles)
        assert {d["name"] for d in doc["data_objects"]} == {
            r.name for r in nn_report.session.device_allocations
        }

    def test_heatmap_section_matches_resolved_rows(self, nn_report, nn_doc):
        section = nn_doc["heatmap"]
        resolved = nn_report.resolved_heatmap(64)
        assert section["layout"] == "series"
        assert section["total_accesses"] == resolved.total_accesses > 0
        assert [a["name"] for a in section["allocations"]] == [
            row.name for row in resolved.rows
        ]
        for entry, row in zip(section["allocations"], resolved.rows):
            assert entry["reads"] == row.reads
            assert entry["writes"] == row.writes
            assert entry["unique_bytes"] == row.unique_bytes

    def test_columnar_layout_holds_same_totals(self, nn_report, nn_doc):
        columnar = profile_export(nn_report, columnar=True)
        validate(columnar)
        cells = columnar["heatmap"]["cells"]
        series = nn_doc["heatmap"]["allocations"]
        assert sum(cells["reads"]) == sum(
            sum(a["reads"]) for a in series
        )
        assert sum(cells["writes"]) == sum(
            sum(a["writes"]) for a in series
        )
        # every cell entry points at a declared allocation row
        n_alloc = len(columnar["heatmap"]["allocations"])
        assert all(i < n_alloc for i in cells["allocation"])

    def test_runtime_section_is_opt_in(self, nn_report, nn_doc):
        assert "runtime" not in nn_doc
        with_runtime = profile_export(nn_report, include_runtime=True)
        validate(with_runtime)
        assert "trace_buffers" in with_runtime["runtime"]
        assert "wall" in with_runtime["runtime"]


class TestDrainIdentity:
    @pytest.mark.parametrize("app", ["nn", "bfs"])
    def test_in_ram_and_streaming_exports_byte_identical(self, app):
        in_ram = export_json(profile_export(_profile(app)))
        streamed = export_json(
            profile_export(_profile(app, streaming=True))
        )
        assert in_ram == streamed

    def test_streaming_doc_validates_and_has_heatmap(self):
        doc = profile_export(_profile("nn", streaming=True))
        validate(doc)
        assert doc["heatmap"]["total_accesses"] > 0


class TestNDJSON:
    """Streamed emission: one record per top-level section (pinned)."""

    def test_records_reassemble_into_canonical_document(self, nn_report):
        lines = list(profile_export_stream(nn_report))
        reassembled = assemble_ndjson(lines)
        assert export_json(reassembled) == export_json(
            profile_export(nn_report)
        )

    def test_one_compact_record_per_section_sorted(self, nn_report, nn_doc):
        lines = list(profile_export_stream(nn_report))
        records = [json.loads(line) for line in lines]
        assert [r["section"] for r in records] == sorted(nn_doc)
        for line, record in zip(lines, records):
            assert set(record) == {"section", "value"}
            assert line.endswith("\n") and "\n" not in line[:-1]
            assert record["value"] == nn_doc[record["section"]]

    def test_assemble_skips_blank_lines(self, nn_doc):
        lines = [
            json.dumps({"section": k, "value": v}) + "\n"
            for k, v in nn_doc.items()
        ]
        assert assemble_ndjson(["\n"] + lines + ["", "\n"]) == nn_doc

    def test_cli_export_ndjson(self, capsys):
        assert main(["export", "nn", "--no-overhead", "--ndjson"]) == 0
        out = capsys.readouterr().out
        doc = assemble_ndjson(out.splitlines())
        validate(doc)
        assert doc["program"] == "nn"


class TestCLI:
    def test_export_writes_validating_document(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main(["export", "nn", "-o", str(out), "--no-overhead"]) == 0
        doc = json.loads(out.read_text())
        validate(doc)
        assert doc["program"] == "nn"
        assert doc["heatmap"]["total_accesses"] > 0
        assert "metrics" in doc and "overhead" not in doc["metrics"]

    def test_export_to_stdout(self, capsys):
        assert main(["export", "nn", "--no-overhead"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate(doc)

    def test_profile_format_json_emits_export_document(self, capsys):
        assert main([
            "profile", "nn", "--format", "json", "--heatmap",
            "--no-overhead",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate(doc)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert "heatmap" in doc

    def test_profile_format_json_without_heatmap(self, capsys):
        assert main([
            "profile", "nn", "--format", "json", "--no-overhead",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate(doc)
        assert "heatmap" not in doc

    def test_legacy_json_flag_still_summarizes(self, capsys):
        assert main(["profile", "nn", "--json", "--no-overhead"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # the legacy dump, not the export document
        assert "schema_version" not in doc
        assert doc["program"] == "nn"

    def test_profile_heatmap_renders_rows(self, capsys):
        assert main(["profile", "nn", "--heatmap", "--no-overhead"]) == 0
        out = capsys.readouterr().out
        assert "### memory heat map" in out
        assert "d_locations" in out

    def test_verbose_renders_empty_sections(self, capsys):
        # The satellite fix: both sections appear even when empty.
        assert main(["profile", "nn", "--verbose", "--no-overhead"]) == 0
        out = capsys.readouterr().out
        assert "### jit trace cache" in out
        assert "only runs under --backend batched" in out
        assert "### streaming drain" in out
        assert "enable with" in out

    def test_verbose_renders_populated_sections(self, capsys):
        assert main([
            "profile", "nn", "--verbose", "--no-overhead",
            "--backend", "batched", "--streaming-drain",
        ]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "peak rows" in out

    def test_usage_errors(self, capsys):
        # heat map needs memory instrumentation
        assert main([
            "profile", "nn", "--heatmap", "--modes", "blocks",
        ]) == 2
        assert "memory" in capsys.readouterr().err
        assert main(["profile", "nn", "--time-buckets", "0"]) == 2
        assert main(["export", "nn", "--heatmap-cell-rows", "0"]) == 2
        assert main(["export", "nope"]) == 2


class TestValidator:
    def _ok_doc(self):
        return {
            "schema_version": "1.0",
            "generator": "cudaadvisor-repro",
            "program": "x",
            "arch": {
                "name": "Kepler", "chip": "K40c",
                "l1_size": 16384, "l1_line_size": 128,
            },
            "modes": ["memory"],
            "advice": [],
            "kernels": [],
            "data_objects": [],
            "metrics": {},
        }

    def test_minimal_document_passes(self):
        validate(self._ok_doc())

    def test_missing_required_rejected(self):
        doc = self._ok_doc()
        del doc["program"]
        with pytest.raises(SchemaError, match="program"):
            validate(doc)

    def test_wrong_type_rejected(self):
        doc = self._ok_doc()
        doc["arch"]["l1_size"] = "16k"
        with pytest.raises(SchemaError, match="l1_size"):
            validate(doc)

    def test_unknown_top_level_key_rejected(self):
        doc = self._ok_doc()
        doc["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            validate(doc)

    def test_bad_enum_and_pattern_rejected(self):
        doc = self._ok_doc()
        doc["modes"] = ["tensor_cores"]
        with pytest.raises(SchemaError, match="tensor_cores"):
            validate(doc)
        doc = self._ok_doc()
        doc["schema_version"] = "v1"
        with pytest.raises(SchemaError, match="schema_version"):
            validate(doc)

    def test_negative_count_rejected(self):
        doc = self._ok_doc()
        doc["metrics"]["arithmetic"] = {
            "lane_flops": -1, "lane_intops": 0, "float_fraction": 0.0,
            "by_opcode": {}, "by_line": {},
        }
        with pytest.raises(SchemaError, match="lane_flops"):
            validate(doc)

    def test_bool_is_not_an_integer(self):
        doc = self._ok_doc()
        doc["arch"]["l1_size"] = True
        with pytest.raises(SchemaError, match="l1_size"):
            validate(doc)
