"""Unit tests for the profiling service: specs, cache, scheduler.

The full fault matrix lives in ``tests/test_service_chaos.py``; this
file pins the building blocks -- cache-key semantics, crash-safe cache
entries with quarantine accounting, the submit/poll/result/wait client
API, coalescing, serial (workers=0) mode and the strict failure policy.
"""

import json
import os

import pytest

from repro.errors import ReproError
from repro.export import SCHEMA_VERSION, export_json
from repro.reliability import FaultInjector
from repro.service import (
    CACHE_HIT,
    COALESCED,
    FRESH,
    JobSpec,
    ProfilingService,
    ResultCache,
    ServiceError,
    run_job,
)

SYRK = {"app": "syrk", "app_kwargs": (("m", 16), ("n", 16))}
SYRK_KW = {"n": 16, "m": 16}


# -- cache keys --------------------------------------------------------------


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        a = JobSpec(**SYRK).cache_key("ir", SCHEMA_VERSION)
        b = JobSpec(**SYRK).cache_key("ir", SCHEMA_VERSION)
        assert a == b

    @pytest.mark.parametrize("field,value", [
        ("app_kwargs", (("m", 16), ("n", 32))),
        ("arch", "pascal"),
        ("modes", ("memory",)),
        ("sample_rate", 4),
        ("buffer_capacity", 100),
        ("measure_overhead", True),
        ("heatmap", True),
        ("time_buckets", 32),
        ("columnar", True),
    ])
    def test_every_knob_feeds_the_key(self, field, value):
        base = JobSpec(**SYRK)
        changed = JobSpec(**{**SYRK, field: value})
        assert base.cache_key("ir", SCHEMA_VERSION) != (
            changed.cache_key("ir", SCHEMA_VERSION)
        )

    def test_ir_hash_stable_across_service_instances(self):
        # printed SSA names carry a global counter; the hash must
        # alpha-rename them away or persistent cache keys break
        with ProfilingService(workers=0) as a, \
                ProfilingService(workers=0) as b:
            assert a._module_ir_hash("syrk") == b._module_ir_hash("syrk")
            assert a._module_ir_hash("syrk") != a._module_ir_hash("nn")

    def test_ir_hash_and_schema_version_feed_the_key(self):
        spec = JobSpec(**SYRK)
        assert spec.cache_key("ir1", "1.0") != spec.cache_key("ir2", "1.0")
        assert spec.cache_key("ir1", "1.0") != spec.cache_key("ir1", "2.0")


# -- the crash-safe result cache ---------------------------------------------


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k1", "payload text\n", meta={"app": "syrk"})
        assert cache.get("k1") == "payload text\n"
        assert cache.stats == {
            "hits": 1, "misses": 0, "writes": 1, "quarantined": 0,
            "evictions": 0, "evicted_bytes": 0,
        }

    def test_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("nope") is None
        assert cache.stats["misses"] == 1

    def test_no_temp_residue(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k1", "x" * 10000)
        assert [n for n in os.listdir(tmp_path)
                if n.startswith(".tmp-")] == []

    @pytest.mark.parametrize("mangle", [
        lambda blob: b"junk" + blob[4:],                      # bad magic
        lambda blob: blob[: len(blob) // 2],                  # truncated
        lambda blob: blob[:-3] + b"XYZ",                      # payload flip
        lambda blob: blob.replace(b'"sha256"', b'"sha999"'),  # bad header
    ])
    def test_corruption_quarantined_and_reported_as_miss(
        self, tmp_path, mangle
    ):
        cache = ResultCache(str(tmp_path))
        path = cache.put("k1", "good payload\n")
        with open(path, "rb") as f:
            blob = f.read()
        with open(path, "wb") as f:
            f.write(mangle(blob))
        assert cache.get("k1") is None
        # quarantined with accounting; the entry is gone from the cache
        assert cache.stats["quarantined"] == 1
        assert cache.quarantine_log[0]["key"] == "k1"
        assert os.path.exists(
            os.path.join(cache.quarantine_dir(), "k1.entry")
        )
        assert not os.path.exists(path)
        # a re-publish transparently heals the entry
        cache.put("k1", "good payload\n")
        assert cache.get("k1") == "good payload\n"

    def test_wrong_key_in_entry_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        src = cache.put("k1", "payload\n")
        os.replace(src, cache.entry_path("k2"))
        assert cache.get("k2") is None
        assert cache.stats["quarantined"] == 1

    def test_injected_corruption(self, tmp_path):
        injector = FaultInjector().inject("cache_corrupt_entry",
                                          when={"key": "k1"})
        cache = ResultCache(str(tmp_path), injector=injector)
        cache.put("k1", "payload\n")
        assert cache.get("k1") is None
        assert cache.stats["quarantined"] == 1


class TestResultCacheLRU:
    """Size-budgeted eviction: mtime is the recency clock."""

    PAYLOAD = "x" * 256

    def _entry_size(self, tmp_path):
        # All keys are the same length, so every entry is this size.
        probe = ResultCache(str(tmp_path / "probe"))
        return os.path.getsize(probe.put("k0", self.PAYLOAD))

    def test_oldest_evicted_once_over_budget(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        for age, key in enumerate(["k1", "k2"]):
            cache.put(key, self.PAYLOAD)
            os.utime(cache.entry_path(key), (100.0 + age, 100.0 + age))
        assert cache.stats["evictions"] == 0
        cache.put("k3", self.PAYLOAD)  # over budget: k1 is LRU
        assert not os.path.exists(cache.entry_path("k1"))
        assert cache.get("k2") == self.PAYLOAD
        assert cache.get("k3") == self.PAYLOAD  # the fresh put survives
        assert cache.stats["evictions"] == 1
        assert cache.stats["evicted_bytes"] == size

    def test_hit_bumps_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        for age, key in enumerate(["k1", "k2"]):
            cache.put(key, self.PAYLOAD)
            os.utime(cache.entry_path(key), (100.0 + age, 100.0 + age))
        assert cache.get("k1") == self.PAYLOAD  # a hit is a "use"
        cache.put("k3", self.PAYLOAD)
        # k2, not k1, is now the least recently used entry
        assert not os.path.exists(cache.entry_path("k2"))
        assert cache.get("k1") == self.PAYLOAD

    def test_budget_accounting_survives_restart(self, tmp_path):
        size = self._entry_size(tmp_path)
        first = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        for age, key in enumerate(["k1", "k2"]):
            first.put(key, self.PAYLOAD)
            os.utime(first.entry_path(key), (100.0 + age, 100.0 + age))
        # A fresh process seeds sizes and order from the directory.
        cache = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        cache.put("k3", self.PAYLOAD)
        assert not os.path.exists(cache.entry_path("k1"))
        assert cache.get("k2") == self.PAYLOAD
        assert cache.get("k3") == self.PAYLOAD
        assert cache.stats["evictions"] == 1

    def test_quarantine_releases_budget(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), max_bytes=2 * size)
        path = cache.put("k1", self.PAYLOAD)
        with open(path, "r+b") as f:
            f.write(b"junk")
        assert cache.get("k1") is None  # quarantined: off-budget now
        cache.put("k2", self.PAYLOAD)
        cache.put("k3", self.PAYLOAD)
        assert cache.stats["evictions"] == 0  # both fit again


# -- the client API ----------------------------------------------------------


class TestServiceAPI:
    def test_submit_poll_result(self, tmp_path):
        with ProfilingService(workers=1, cache_dir=str(tmp_path)) as svc:
            handle = svc.submit("syrk", app_kwargs=SYRK_KW)
            assert handle.state in ("queued", "running")
            result = handle.result(timeout=120)
            assert handle.poll() == "done"
            assert result.source == FRESH
            doc = json.loads(result.payload)
            assert doc["schema_version"] == SCHEMA_VERSION
            assert doc["program"] == "syrk"

    def test_status_stream_is_ordered(self, tmp_path):
        with ProfilingService(workers=1) as svc:
            handle = svc.submit("syrk", app_kwargs=SYRK_KW)
            states = [e.state for e in svc.stream(handle)]
        assert states[0] == "submitted"
        assert states[-1] == "done"
        assert [e.seq for e in handle.events] == list(range(len(states)))

    def test_result_matches_direct_run_job(self, tmp_path):
        direct = run_job(JobSpec(**SYRK))
        with ProfilingService(workers=1) as svc:
            pooled = svc.submit("syrk", app_kwargs=SYRK_KW).result(
                timeout=120
            )
        assert pooled.payload == direct["payload"]
        assert pooled.launches == direct["launches"]

    def test_serial_mode_workers_zero(self):
        with ProfilingService(workers=0) as svc:
            result = svc.submit("syrk", app_kwargs=SYRK_KW).result(
                timeout=120
            )
            assert result.source == FRESH  # serial by configuration,
            assert result.reasons == []    # not by degradation

    def test_coalescing_identical_inflight_submits(self):
        with ProfilingService(workers=1) as svc:
            first = svc.submit("syrk", app_kwargs=SYRK_KW)
            second = svc.submit("syrk", app_kwargs=SYRK_KW)
            svc.wait(timeout=120)
            assert first.result().source == FRESH
            assert second.result().source == COALESCED
            assert second.result().payload == first.result().payload
            assert svc.counters["jobs_executed"] == 1

    def test_unknown_config_key_rejected(self):
        with ProfilingService(workers=0) as svc:
            with pytest.raises(ServiceError, match="unknown submit"):
                svc.submit("syrk", {"colour": "red"})

    def test_heatmap_needs_memory_mode(self):
        with ProfilingService(workers=0) as svc:
            with pytest.raises(ServiceError, match="memory"):
                svc.submit("syrk", {"modes": ("blocks",), "heatmap": True})

    def test_unknown_app_rejected_at_submit(self):
        with ProfilingService(workers=0) as svc:
            with pytest.raises(ServiceError, match="no_such_app"):
                svc.submit("no_such_app")

    def test_service_error_is_repro_error(self):
        assert issubclass(ServiceError, ReproError)


# -- cache round-trip: cold -> warm -> corrupt -> re-simulate ----------------


class TestCacheRoundTrip:
    def test_cold_warm_corrupt_resimulate(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ProfilingService(workers=1, cache_dir=cache_dir) as svc:
            cold = svc.submit("syrk", app_kwargs=SYRK_KW).result(timeout=120)
            assert cold.source == FRESH
            assert svc.counters["jobs_executed"] == 1

            warm = svc.submit("syrk", app_kwargs=SYRK_KW).result(timeout=120)
            assert warm.source == CACHE_HIT
            assert warm.payload == cold.payload
            assert svc.counters["jobs_executed"] == 1  # no new simulation

            # corrupt the entry on disk; the next submit must quarantine
            # it and transparently re-simulate to identical bytes
            path = svc.cache.entry_path(cold.key)
            with open(path, "r+b") as f:
                f.seek(-8, os.SEEK_END)
                f.write(b"CORRUPT!")
            healed = svc.submit("syrk", app_kwargs=SYRK_KW).result(
                timeout=120
            )
            assert healed.source == FRESH
            assert "cache-entry-corrupt" in healed.reasons
            assert healed.payload == cold.payload
            assert svc.cache.stats["quarantined"] == 1
            assert svc.counters["jobs_executed"] == 2

            # and the healed entry serves hits again
            again = svc.submit("syrk", app_kwargs=SYRK_KW).result(timeout=120)
            assert again.source == CACHE_HIT

    def test_cache_survives_service_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with ProfilingService(workers=0, cache_dir=cache_dir) as svc:
            cold = svc.submit("syrk", app_kwargs=SYRK_KW).result(timeout=120)
        with ProfilingService(workers=0, cache_dir=cache_dir) as svc:
            warm = svc.submit("syrk", app_kwargs=SYRK_KW).result(timeout=120)
            assert warm.source == CACHE_HIT
            assert warm.payload == cold.payload
            assert svc.counters["jobs_executed"] == 0

    def test_payload_is_canonical_export_json(self, tmp_path):
        with ProfilingService(workers=0, cache_dir=str(tmp_path)) as svc:
            result = svc.submit("syrk", app_kwargs=SYRK_KW).result(
                timeout=120
            )
        assert result.payload == export_json(json.loads(result.payload))


# -- strict policy -----------------------------------------------------------


class TestStrictPolicy:
    def test_strict_worker_crash_fails_fast(self, tmp_path):
        injector = FaultInjector().inject(
            "service_worker_crash", when={"job": "job-1"}
        )
        with ProfilingService(
            workers=1, failure_policy="strict", injector=injector,
            max_attempts=3,
        ) as svc:
            handle = svc.submit("syrk", app_kwargs=SYRK_KW)
            with pytest.raises(ServiceError, match="job-worker-crash"):
                handle.result(timeout=60)
            assert handle.attempts == 1  # strict never retries
            assert svc.counters["serial_fallbacks"] == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError, match="failure policy"):
            ProfilingService(workers=0, failure_policy="yolo")
