"""Tests for the simulated memory spaces."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.gpu.memory import (
    GLOBAL_BASE,
    GlobalMemory,
    LocalMemory,
    SharedMemory,
)


class TestGlobalMemory:
    def test_allocation_alignment(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(100)
        b = mem.allocate(100)
        assert a.base % 256 == 0
        assert b.base % 256 == 0
        assert b.base >= a.end

    def test_zero_size_rejected(self):
        mem = GlobalMemory(1 << 20)
        with pytest.raises(MemoryError_):
            mem.allocate(0)

    def test_oom(self):
        mem = GlobalMemory(1 << 12)
        with pytest.raises(MemoryError_, match="out of memory"):
            mem.allocate(1 << 13)

    def test_double_free(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(64)
        mem.free(a)
        with pytest.raises(MemoryError_, match="double free"):
            mem.free(a)

    def test_write_read_roundtrip(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(64)
        data = np.arange(16, dtype=np.float32)
        mem.write_bytes(a.base, data)
        back = mem.read_bytes(a.base, 64).view(np.float32)
        assert np.array_equal(back, data)

    def test_gather_scatter_typed(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(256)
        data = np.arange(32, dtype=np.float32)
        mem.write_bytes(a.base, data)
        addrs = a.base + np.arange(32, dtype=np.int64)[::-1] * 4
        mask = np.ones(32, dtype=bool)
        got = mem.gather(addrs, mask, np.dtype(np.float32))
        assert np.array_equal(got, data[::-1])

        mem.scatter(addrs, mask, got * 2)
        back = mem.read_bytes(a.base, 128).view(np.float32)
        assert np.array_equal(back, data * 2)

    def test_masked_lanes_untouched(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(256)
        addrs = a.base + np.arange(32, dtype=np.int64) * 4
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        values = np.full(32, 7.0, dtype=np.float32)
        mem.scatter(addrs, mask, values)
        back = mem.read_bytes(a.base, 128).view(np.float32)
        assert np.array_equal(back[::2], np.full(16, 7.0, dtype=np.float32))
        assert np.array_equal(back[1::2], np.zeros(16, dtype=np.float32))

    def test_gather_fault_on_null(self):
        mem = GlobalMemory(1 << 20)
        mem.allocate(64)
        addrs = np.zeros(32, dtype=np.int64)  # NULL dereference
        with pytest.raises(MemoryError_, match="fault"):
            mem.gather(addrs, np.ones(32, dtype=bool), np.dtype(np.float32))

    def test_gather_fault_beyond_heap(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(64)
        addrs = np.full(32, a.end + 4096, dtype=np.int64)
        with pytest.raises(MemoryError_):
            mem.gather(addrs, np.ones(32, dtype=bool), np.dtype(np.float32))

    def test_find_allocation(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(64, tag="x")
        assert mem.find_allocation(a.base + 10) is a
        assert mem.find_allocation(a.end + 1000) is None

    def test_byte_granularity(self):
        mem = GlobalMemory(1 << 20)
        a = mem.allocate(64)
        addrs = a.base + np.arange(32, dtype=np.int64)
        mask = np.ones(32, dtype=bool)
        mem.scatter(addrs, mask, np.arange(32, dtype=np.int8))
        got = mem.gather(addrs, mask, np.dtype(np.int8))
        assert np.array_equal(got, np.arange(32, dtype=np.int8))


class TestSharedMemory:
    def test_roundtrip(self):
        shm = SharedMemory(1024)
        addrs = np.arange(32, dtype=np.int64) * 4
        mask = np.ones(32, dtype=bool)
        shm.scatter(addrs, mask, np.arange(32, dtype=np.int32))
        got = shm.gather(addrs, mask, np.dtype(np.int32))
        assert np.array_equal(got, np.arange(32, dtype=np.int32))

    def test_fault_on_overflow(self):
        shm = SharedMemory(64)
        addrs = np.full(32, 128, dtype=np.int64)
        with pytest.raises(MemoryError_, match="shared memory fault"):
            shm.gather(addrs, np.ones(32, dtype=bool), np.dtype(np.float32))


class TestLocalMemory:
    def test_per_lane_privacy(self):
        lm = LocalMemory(32, 1024)
        addrs = np.zeros(32, dtype=np.int64)  # same offset, per-lane rows
        mask = np.ones(32, dtype=bool)
        lm.scatter(addrs, mask, np.arange(32, dtype=np.int32))
        got = lm.gather(addrs, mask, np.dtype(np.int32))
        assert np.array_equal(got, np.arange(32, dtype=np.int32))

    def test_stack_overflow_detected(self):
        lm = LocalMemory(32, 64)
        addrs = np.full(32, 256, dtype=np.int64)
        with pytest.raises(MemoryError_, match="overflow"):
            lm.scatter(addrs, np.ones(32, dtype=bool),
                       np.zeros(32, dtype=np.float32))
