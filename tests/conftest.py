"""Shared fixtures: small kernels and compiled modules.

Kernels used across test modules are defined here once (the DSL needs
real source files, and a shared fixture keeps compilation costs down).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import (
    compile_kernels,
    device,
    f32,
    i32,
    kernel,
    ptr_f32,
    ptr_i32,
)
from repro.gpu import Device, KEPLER_K40C


@device
def clampf(x: f32, lo: f32, hi: f32) -> f32:
    if x < lo:
        return lo
    if x > hi:
        return hi
    return x


@kernel
def saxpy(x: ptr_f32, y: ptr_f32, a: f32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        y[gid] = a * x[gid] + y[gid]


@kernel
def saxpy_clamped(x: ptr_f32, y: ptr_f32, a: f32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        y[gid] = clampf(a * x[gid] + y[gid], -10.0, 10.0)


@kernel
def strided_sum(data: ptr_f32, out: ptr_f32, n: i32, stride: i32):
    gid = ctaid_x * ntid_x + tid_x
    acc = 0.0
    for i in range(gid, n, ntid_x * nctaid_x):
        acc += data[(i * stride) % n]
    out[gid] = acc


@kernel
def block_reduce(data: ptr_f32, out: ptr_f32, n: i32):
    tile = shared(f32, 64)
    t = tid_x
    gid = ctaid_x * ntid_x + t
    acc = 0.0
    for i in range(gid, n, ntid_x * nctaid_x):
        acc += data[i]
    tile[t] = acc
    syncthreads()
    s = ntid_x // 2
    while s > 0:
        if t < s:
            tile[t] = tile[t] + tile[t + s]
        syncthreads()
        s = s // 2
    if t == 0:
        atomic_add(out, 0, tile[0])


@kernel
def divergent_kernel(data: ptr_i32, out: ptr_i32, n: i32):
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        v = data[gid]
        if v % 2 == 0:
            r = v * 3
        else:
            r = v - 7
        k = 0
        while k < v % 4:
            r += k
            k += 1
        out[gid] = r


KERNELS = {
    "saxpy": saxpy,
    "saxpy_clamped": saxpy_clamped,
    "strided_sum": strided_sum,
    "block_reduce": block_reduce,
    "divergent_kernel": divergent_kernel,
}


@pytest.fixture
def fresh_module():
    """A freshly compiled, unoptimized module with every test kernel."""
    return compile_kernels(list(KERNELS.values()), "testmod")


@pytest.fixture
def kepler_device():
    return Device(KEPLER_K40C)


