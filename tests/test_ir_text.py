"""Printer/parser round-trip and error-handling tests."""

import pytest

from repro.errors import IRParseError
from repro.ir import (
    DebugLoc,
    F32,
    I8,
    I32,
    IRBuilder,
    Module,
    VOID,
    parse_module,
    print_module,
    ptr,
    verify_module,
)
from repro.ir.instructions import AtomicOp, CacheOp, CmpPred, Load, Opcode
from repro.ir.types import AddressSpace
from repro.ir.values import GlobalVariable


def _rich_module() -> Module:
    """One module exercising every instruction the printer supports."""
    m = Module("rich", target="nvptx")
    m.add_string("entry")
    m.add_global(GlobalVariable("tile", F32, 64, AddressSpace.SHARED))
    m.add_global(GlobalVariable("lut", I32, 4, AddressSpace.GLOBAL,
                                initializer=[1, 2, 3, 4]))
    hook = m.declare_function(
        "Record", VOID,
        [(ptr(I8), "a"), (I32, "b")], kind="hook",
    )
    fn = m.add_function(
        "k", VOID, [(ptr(F32), "x"), (I32, "n"), (F32, "a")], kind="kernel"
    )
    entry = fn.add_block("entry")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")

    b = IRBuilder.at_end(entry)
    b.set_loc(DebugLoc("k.py", 4, 9))
    slot = b.alloca(I32, 2)
    b.store(b.i32(0), slot)
    i0 = b.load(slot, "i0")
    cond = b.icmp(CmpPred.LT, i0, fn.args[1])
    b.cond_br(cond, body, exit_)

    b.position_at_end(body)
    phi = b.phi(F32, "acc")
    gep = b.gep(fn.args[0], i0)
    v = b.load(gep, "v", cache_op=CacheOp.CACHE_GLOBAL)
    raw = b.bitcast(gep, ptr(I8))
    b.call(hook, [raw, b.i32(32)])
    s = b.fadd(phi, v)
    phi.add_incoming(b.f32(0.0), entry)
    phi.add_incoming(s, body)
    conv = b.sitofp(i0, F32)
    sel = b.select(b.fcmp(CmpPred.GT, s, conv), s, conv)
    old = b.atomic_rmw(AtomicOp.ADD, gep, sel)
    c2 = b.fcmp(CmpPred.LT, old, fn.args[2])
    b.cond_br(c2, body, exit_)

    b.position_at_end(exit_)
    b.ret()
    return m


class TestRoundTrip:
    def test_rich_module_roundtrips(self):
        m = _rich_module()
        text = print_module(m)
        m2 = parse_module(text)
        assert print_module(m2) == text

    def test_parsed_module_structure(self):
        m2 = parse_module(print_module(_rich_module()))
        fn = m2.get_function("k")
        assert fn.kind == "kernel"
        assert [b.name for b in fn.blocks] == ["entry", "body", "exit"]
        assert m2.get_function("Record").kind == "hook"
        assert m2.globals["tile"].addrspace == AddressSpace.SHARED
        assert m2.globals["lut"].initializer == [1, 2, 3, 4]

    def test_debug_locs_roundtrip(self):
        m2 = parse_module(print_module(_rich_module()))
        entry = m2.get_function("k").entry
        assert entry.instructions[0].debug_loc == DebugLoc("k.py", 4, 9)

    def test_cache_op_roundtrip(self):
        m2 = parse_module(print_module(_rich_module()))
        body = m2.get_function("k").block("body")
        loads = [i for i in body.instructions if isinstance(i, Load)]
        assert loads[0].cache_op == CacheOp.CACHE_GLOBAL

    def test_parsed_module_verifies(self):
        verify_module(parse_module(print_module(_rich_module())))

    def test_frontend_output_roundtrips(self, fresh_module):
        text = print_module(fresh_module)
        assert print_module(parse_module(text)) == text


class TestParseErrors:
    def test_undefined_value(self):
        text = (
            '; module m\n\ntarget = "nvptx"\n\n'
            "define kernel void @k() {\n"
            "entry:\n  ret i32 %nope\n}\n"
        )
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_unknown_instruction(self):
        text = (
            '; module m\n\ntarget = "nvptx"\n\n'
            "define kernel void @k() {\nentry:\n  frobnicate\n}\n"
        )
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_instruction_outside_block(self):
        text = (
            '; module m\n\ntarget = "nvptx"\n\n'
            "define kernel void @k() {\n  ret void\n}\n"
        )
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_corrupt_top_level(self):
        with pytest.raises(IRParseError):
            parse_module("; module m\nwat is this\n")
