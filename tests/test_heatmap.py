"""Memory heat maps: drain-invariance, resolution, rendering.

The heat-map aggregate (``analysis/heatmap.py``) must produce
byte-identical ``(granule, time-cell)`` tables no matter how the trace
reaches it:

* **Property tests** (hypothesis) compare one whole-trace update
  against random segment splits (the streaming drain), CTA-partition
  shard merges (fork-parallel workers), and the full streaming drain
  with stride sampling -- cells must match bit-for-bit.
* **Resolution tests** pin the granule->allocation join: exact
  unique-byte counts under time re-binning, the ``(unmapped)`` row,
  and the launch-concatenating cross-launch merge.
* **App-level tests** run an instrumented program through the in-RAM
  and streaming drains and require identical resolved heat maps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregates import advisor_plan
from repro.analysis.heatmap import (
    DEFAULT_GRANULE,
    HeatmapAggregate,
    HeatmapTable,
    heatmap_analysis,
)
from repro.analysis.report import render_heatmap
from repro.apps import build_app
from repro.errors import AnalysisError
from repro.optim.advisor import CUDAAdvisor
from repro.profiler.buffers import (
    ColumnarArithBuffer,
    ColumnarBlockBuffer,
    ColumnarMemoryBuffer,
    stride_sample,
)
from repro.profiler.streamdrain import StreamDrain
from repro.reliability.spill import SpillConfig

WARP = 4

#: one memory event: (cta, address selector, write flag, mask selector).
_EVENTS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 15),
        st.booleans(),
        st.integers(0, 2),
    ),
    max_size=60,
)


def _build_memory(events, spill=None):
    buf = ColumnarMemoryBuffer(None, spill)
    for seq, (cta, sel, write, msel) in enumerate(events):
        addrs = (
            0x1000
            + np.arange(WARP, dtype=np.int64) * (sel % 3 + 1) * 96
            + sel * 64
        )
        mask = np.ones(WARP, bool) if msel else np.arange(WARP) % 2 == 0
        buf.append(
            seq=seq, cta=cta, warp_in_cta=sel % 2, addrs=addrs, mask=mask,
            bits=32 if sel % 2 else 64, line=sel % 5, col=sel % 3,
            op=2 if write else 1, call_path_id=0,
        )
    return buf


def _cells_equal(a: HeatmapTable, b: HeatmapTable) -> bool:
    if set(a.cells) != set(b.cells) or a.time_cells != b.time_cells:
        return False
    return all(
        a.cells[k].reads == b.cells[k].reads
        and a.cells[k].writes == b.cells[k].writes
        and np.array_equal(a.cells[k].bits, b.cells[k].bits)
        for k in a.cells
    )


def _whole_trace_table(events, cell_rows=4):
    agg = HeatmapAggregate(cell_rows=cell_rows)
    cols = _build_memory(events).drain()
    if len(cols):
        agg.update(cols)
    return agg.finalize()


class TestDrainInvariance:
    @settings(max_examples=40, deadline=None)
    @given(events=_EVENTS, data=st.data())
    def test_random_segment_splits_match_whole_trace(self, events, data):
        cols = _build_memory(events).drain()
        agg = HeatmapAggregate(cell_rows=4)
        start = 0
        while start < len(cols):
            step = data.draw(st.integers(1, 9))
            agg.update(cols.take(np.arange(start, min(start + step, len(cols)))))
            start += step
        assert _cells_equal(agg.finalize(), _whole_trace_table(events))

    @settings(max_examples=40, deadline=None)
    @given(events=_EVENTS, pivot=st.integers(0, 3))
    def test_cta_shard_merge_matches_whole_trace(self, events, pivot):
        cols = _build_memory(events).drain()
        low, high = HeatmapAggregate(4), HeatmapAggregate(4)
        sel = np.asarray(cols.cta) <= pivot
        if sel.any():
            low.update(cols.take(np.flatnonzero(sel)))
        if (~sel).any():
            high.update(cols.take(np.flatnonzero(~sel)))
        low.merge(high)
        assert _cells_equal(low.finalize(), _whole_trace_table(events))

    @settings(max_examples=25, deadline=None)
    @given(
        events=_EVENTS,
        segment_rows=st.integers(1, 13),
        rate=st.sampled_from([1, 2, 3]),
    )
    def test_streaming_drain_with_sampling(
        self, tmp_path_factory, events, segment_rows, rate
    ):
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("seg")),
            segment_rows=segment_rows,
        )
        mem = _build_memory(events, spill)
        plan = advisor_plan(64, ("memory",), heatmap_cell_rows=4)
        bank = plan.create_bank()
        StreamDrain(bank, sample_rate=rate).feed_buffers(
            mem, ColumnarBlockBuffer(None, spill),
            ColumnarArithBuffer(None, spill),
        )

        batch_cols = _build_memory(events).drain()
        kept, _ = stride_sample(
            batch_cols, ColumnarArithBuffer(None).drain(), rate
        )
        ref = HeatmapAggregate(cell_rows=4)
        if len(kept):
            ref.update(kept)
        assert _cells_equal(bank.result("heatmap"), ref.finalize())

    def test_merge_rejects_mismatched_binning_and_shared_ctas(self):
        a, b = HeatmapAggregate(4), HeatmapAggregate(8)
        with pytest.raises(AnalysisError):
            a.merge(b)
        cols = _build_memory([(0, 1, False, 1)]).drain()
        c, d = HeatmapAggregate(4), HeatmapAggregate(4)
        c.update(cols)
        d.update(cols)
        with pytest.raises(AnalysisError):
            c.merge(d)


class TestResolution:
    def _alloc(self, name, base, nbytes, site="app.py: 1"):
        class _Rec:
            pass

        rec = _Rec()
        rec.name, rec.base, rec.end, rec.site = (
            name, base, base + nbytes, site
        )
        return rec

    def test_counts_land_on_owning_allocation_and_unmapped(self):
        agg = HeatmapAggregate(cell_rows=2)
        buf = ColumnarMemoryBuffer(None)
        # Two reads in alloc A, one write in alloc B, one read outside.
        for seq, (addr, op) in enumerate(
            [(0x1000, 1), (0x1010, 1), (0x2000, 2), (0x9000, 1)]
        ):
            buf.append(
                seq=seq, cta=0, warp_in_cta=0,
                addrs=np.full(WARP, addr, np.int64),
                mask=np.array([True] + [False] * (WARP - 1)),
                bits=32, line=1, col=0, op=op, call_path_id=0,
            )
        agg.update(buf.drain())
        table = agg.finalize()
        heat = table.resolve(
            [
                self._alloc("A", 0x1000, 4096),
                self._alloc("B", 0x2000, 4096),
            ],
            time_buckets=4,
        )
        by_name = {row.name: row for row in heat.rows}
        assert sum(by_name["A"].reads) == 2
        assert sum(by_name["A"].writes) == 0
        assert sum(by_name["B"].writes) == 1
        assert sum(by_name["(unmapped)"].reads) == 1
        # 4-byte reads at 0x1000 and 0x1010: 8 distinct bytes in A.
        assert sum(by_name["A"].unique_bytes) == 8
        assert sum(by_name["B"].unique_bytes) == 4

    def test_unique_bytes_exact_under_time_rebinning(self):
        # The same byte touched in many time cells must count once per
        # display bucket, however cells fold into buckets.
        agg = HeatmapAggregate(cell_rows=1)  # one cell per access
        buf = ColumnarMemoryBuffer(None)
        for seq in range(8):
            buf.append(
                seq=seq, cta=0, warp_in_cta=0,
                addrs=np.full(WARP, 0x1000, np.int64),
                mask=np.array([True] + [False] * (WARP - 1)),
                bits=32, line=1, col=0, op=1, call_path_id=0,
            )
        table = agg_update_and_finalize(agg, buf)
        assert table.time_cells == 8
        for buckets in (1, 2, 3, 8):
            heat = table.resolve(
                [self._alloc("A", 0x1000, 256)], time_buckets=buckets
            )
            row = heat.rows[0]
            assert sum(row.reads) == 8
            # 4 distinct bytes per occupied bucket, never 4 * cells.
            assert row.unique_bytes == [4] * heat.time_buckets

    def test_cross_launch_merge_concatenates_timelines(self):
        def one_launch():
            agg = HeatmapAggregate(cell_rows=1)
            buf = ColumnarMemoryBuffer(None)
            for seq in range(3):
                buf.append(
                    seq=seq, cta=0, warp_in_cta=0,
                    addrs=np.full(WARP, 0x1000, np.int64),
                    mask=np.array([True] + [False] * (WARP - 1)),
                    bits=32, line=1, col=0, op=1, call_path_id=0,
                )
            return agg_update_and_finalize(agg, buf)

        merged = HeatmapTable(cell_rows=1)
        merged.merge(one_launch())
        assert merged.time_cells == 3
        merged.merge(one_launch())
        assert merged.time_cells == 6  # second launch shifted past first
        assert all(cell.reads == 1 for cell in merged.cells.values())

    def test_resolve_rejects_bad_buckets_and_empty_table(self):
        table = HeatmapTable()
        with pytest.raises(AnalysisError):
            table.resolve([], time_buckets=0)
        heat = table.resolve([self._alloc("A", 0x1000, 64)], time_buckets=4)
        assert heat.time_buckets == 0
        assert heat.total_accesses == 0
        # the untouched allocation still appears as an (all-zero) row
        assert [row.name for row in heat.rows] == ["A"]


def agg_update_and_finalize(agg, buf):
    agg.update(buf.drain())
    return agg.finalize()


class TestRendering:
    def test_render_names_and_intensity(self):
        adv = CUDAAdvisor(
            modes=("memory",), measure_overhead=False, heatmap=True
        )
        report = adv.profile(build_app("nn"))
        text = render_heatmap("nn", report.resolved_heatmap(8))
        assert "Memory heat map -- nn" in text
        assert "d_locations" in text and "d_distances" in text
        assert "@" in text  # the hottest cell always renders full shade

    def test_render_empty(self):
        heat = HeatmapTable().resolve([], time_buckets=4)
        text = render_heatmap("empty", heat)
        assert "no memory accesses recorded" in text


class TestAppLevel:
    @pytest.mark.parametrize("app_name", ["nn", "bfs"])
    def test_in_ram_and_streaming_drains_agree(self, app_name):
        tables = []
        for streaming in (False, True):
            adv = CUDAAdvisor(
                modes=("memory", "blocks"),
                measure_overhead=False,
                streaming_drain=streaming,
                heatmap=True,
            )
            report = adv.profile(build_app(app_name))
            assert report.heatmap is not None
            tables.append(report.heatmap)
        assert _cells_equal(tables[0], tables[1])

    def test_heatmap_off_by_default(self):
        adv = CUDAAdvisor(modes=("memory",), measure_overhead=False)
        report = adv.profile(build_app("nn"))
        assert report.heatmap is None
        with pytest.raises(AnalysisError):
            report.resolved_heatmap()

    def test_resolved_rows_cover_session_allocations(self):
        adv = CUDAAdvisor(
            modes=("memory",), measure_overhead=False, heatmap=True,
            heatmap_cell_rows=32,
        )
        report = adv.profile(build_app("nn"))
        heat = report.resolved_heatmap(16)
        names = {row.name for row in heat.rows}
        assert names == {
            r.name for r in report.session.device_allocations
        }
        assert report.heatmap.granule_bytes == DEFAULT_GRANULE
        assert heat.total_accesses > 0

    def test_batch_helper_matches_aggregate_path(self):
        adv = CUDAAdvisor(
            modes=("memory",), measure_overhead=False, heatmap=True
        )
        report = adv.profile(build_app("nn"))
        rebuilt = HeatmapTable()
        for profile in report.session.profiles:
            rebuilt.merge(heatmap_analysis(profile))
        assert _cells_equal(report.heatmap, rebuilt)
