"""Spill-to-disk equivalence: a buffer that spills segments must drain
a record stream byte-identical to an all-in-memory buffer.

Pinned at two levels:

* **Property tests** (hypothesis) drive the columnar buffers directly
  with random append/extend streams and tiny segment sizes, comparing
  every drained column against a spill-free twin -- including capacity
  drops, which must count identically whether rows live in memory or on
  disk.
* **App-level tests** run instrumented programs with a tiny
  ``spill_rows`` so every launch crosses the spill threshold many
  times, across the serial, batched, and fork-parallel backends, and
  assert full-profile equality (records, call paths, statistics) plus
  identical ``stride_sample`` subsets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiler.buffers import (
    ColumnarArithBuffer,
    ColumnarMemoryBuffer,
    stride_sample,
)
from repro.profiler.session import ProfilingSession
from repro.reliability.spill import SpillConfig
from tests.test_fastpath_equivalence import (
    APPS,
    _assert_profiles_match,
    _profile_session,
)

WARP = 4  # lanes per row in the property tests (small but 2-D)


def _append_memory(buf, i):
    buf.append(
        seq=i, cta=i % 7, warp_in_cta=i % 3,
        addrs=np.arange(WARP, dtype=np.int64) + i,
        mask=np.arange(WARP) % 2 == i % 2,
        bits=32, line=i % 11, col=i % 5, op=i % 2, call_path_id=i % 13,
    )


def _assert_memory_columns_equal(a, b):
    assert len(a) == len(b)
    for f in ("seq", "cta", "warp_in_cta", "bits", "line", "col", "op",
              "call_path_id", "addresses", "mask"):
        assert np.array_equal(getattr(a, f), getattr(b, f)), f


def _assert_arith_columns_equal(a, b):
    assert len(a) == len(b)
    assert list(a.opcodes) == list(b.opcodes)
    for f in ("seq", "cta", "warp_in_cta", "bits", "is_float", "line",
              "col", "active_lanes", "call_path_id"):
        assert np.array_equal(getattr(a, f), getattr(b, f)), f


class TestSpillPropertyMemory:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=400),
        segment_rows=st.integers(min_value=1, max_value=64),
    )
    def test_drain_identical_to_memory_only(self, tmp_path_factory, n,
                                            segment_rows):
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("spill")),
            segment_rows=segment_rows,
        )
        plain = ColumnarMemoryBuffer()
        spilly = ColumnarMemoryBuffer(spill=spill)
        for i in range(n):
            _append_memory(plain, i)
            _append_memory(spilly, i)
        assert len(spilly) == len(plain) == n
        if n > segment_rows:
            assert spilly.spilled > 0
        _assert_memory_columns_equal(plain.drain(), spilly.drain())
        assert spilly.dropped == 0

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=300),
        segment_rows=st.integers(min_value=1, max_value=64),
        capacity=st.integers(min_value=0, max_value=200),
    )
    def test_capacity_counts_disk_rows(self, tmp_path_factory, n,
                                       segment_rows, capacity):
        """``capacity`` bounds total retained rows (memory + spilled),
        and the retained prefix matches a spill-free capped buffer."""
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("spill")),
            segment_rows=segment_rows,
        )
        plain = ColumnarMemoryBuffer(capacity)
        spilly = ColumnarMemoryBuffer(capacity, spill)
        for i in range(n):
            _append_memory(plain, i)
            _append_memory(spilly, i)
        assert spilly.dropped == plain.dropped == max(0, n - capacity)
        _assert_memory_columns_equal(plain.drain(), spilly.drain())

    @settings(max_examples=20, deadline=None)
    @given(
        chunks=st.lists(
            st.integers(min_value=0, max_value=120), max_size=6
        ),
        segment_rows=st.integers(min_value=1, max_value=48),
    )
    def test_bulk_extend_spills_identically(self, tmp_path_factory, chunks,
                                            segment_rows):
        """extend() (the parallel-shard merge path) may build segments
        larger than ``segment_rows``; the drained stream is unchanged."""
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("spill")),
            segment_rows=segment_rows,
        )
        plain = ColumnarMemoryBuffer()
        spilly = ColumnarMemoryBuffer(spill=spill)
        seq = 0
        for chunk in chunks:
            source = ColumnarMemoryBuffer()
            for _ in range(chunk):
                _append_memory(source, seq)
                seq += 1
            cols = source.drain()
            plain.extend(cols)
            spilly.extend(cols)
        _assert_memory_columns_equal(plain.drain(), spilly.drain())


class TestSpillPropertyArith:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=300),
        segment_rows=st.integers(min_value=1, max_value=64),
        rate=st.sampled_from([1, 2, 3, 5]),
    )
    def test_drain_and_stride_sample_identical(self, tmp_path_factory, n,
                                               segment_rows, rate):
        """Opcode interning survives segment boundaries, and the
        drain-time stride filter keeps the same subset either way."""
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("spill")),
            segment_rows=segment_rows,
        )
        mem_spill = ColumnarMemoryBuffer(spill=spill)
        mem_plain = ColumnarMemoryBuffer()
        arith_spill = ColumnarArithBuffer(spill=spill)
        arith_plain = ColumnarArithBuffer()
        for i in range(n):
            if i % 3 == 0:
                _append_memory(mem_plain, i)
                _append_memory(mem_spill, i)
            else:
                for buf in (arith_plain, arith_spill):
                    buf.append(
                        seq=i, cta=i % 5, warp_in_cta=i % 3,
                        opcode=("fadd", "fmul", "add")[i % 3],
                        bits=32, is_float=i % 2 == 0, line=i % 9,
                        col=i % 4, active_lanes=WARP, call_path_id=i % 7,
                    )
        ms, az = stride_sample(mem_spill.drain(), arith_spill.drain(), rate)
        mp, ap = stride_sample(mem_plain.drain(), arith_plain.drain(), rate)
        _assert_memory_columns_equal(mp, ms)
        _assert_arith_columns_equal(ap, az)


# -- app level: every backend drains spilled traces identically -------------------


def _spilled_session(app_name, app_kwargs, tmp_path, workers=None,
                     backend=None, sample_rate=1, spill_rows=64):
    from repro.apps import build_app
    from repro.frontend import compile_kernels
    from repro.gpu import Device, KEPLER_K40C
    from repro.host import CudaRuntime
    from repro.passes import instrumentation_pipeline, optimization_pipeline

    app = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(app.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession(
        sample_rate=sample_rate, spill_dir=str(tmp_path),
        spill_rows=spill_rows,
    )
    device = Device(KEPLER_K40C)
    device.parallel_workers = workers
    if backend is not None:
        device.backend = backend
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = app.prepare(runtime)
    app.run(runtime, image, state)
    return session


@pytest.mark.parametrize(
    "backend,workers,app",
    [
        (None, None, APPS[0]),
        ("batched", None, APPS[0]),
        # hotspot launches 4 CTAs, so 4 workers genuinely shard the SMs
        (None, 4, APPS[1]),
    ],
)
def test_spilled_app_traces_byte_identical(tmp_path, backend, workers, app):
    app_name, app_kwargs = app
    in_memory = _profile_session(app_name, app_kwargs).profiles
    spilled = _spilled_session(
        app_name, app_kwargs, tmp_path, workers=workers, backend=backend
    )
    assert sum(p.spilled_records for p in spilled.profiles) > 0
    _assert_profiles_match(in_memory, spilled.profiles)


def test_spilled_stride_sample_subset_matches(tmp_path):
    app_name, app_kwargs = APPS[0]
    plain = _profile_session(app_name, app_kwargs, sample_rate=3).profiles
    spilled = _spilled_session(
        app_name, app_kwargs, tmp_path, sample_rate=3
    ).profiles
    _assert_profiles_match(plain, spilled)


def test_spill_directory_left_clean(tmp_path):
    """Drained segments are deleted; nothing leaks between launches."""
    import os

    app_name, app_kwargs = APPS[0]
    _spilled_session(app_name, app_kwargs, tmp_path)
    assert os.listdir(str(tmp_path)) == []
