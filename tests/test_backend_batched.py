"""The batched-warp backend must be invisible: byte-identical traces,
statistics, and memory to the per-warp interpreter, on every kernel
shape -- uniform, device-function calls, divergent (de-batch fallback),
barriers/shared/atomics, and partial warps -- plus loud degradation
when a requested fast path cannot be honoured."""

import warnings

import numpy as np
import pytest

from repro.errors import LaunchDegradedWarning, LaunchError
from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession
from repro.profiler.pc_sampling import PCSampler
from tests.conftest import KERNELS

#: kernel -> (grid, block, launch-arg builder). Block sizes are chosen
#: to put several warps in a CTA (so batching engages) and to include a
#: partially-resident warp (block 48 -> 16 live lanes in warp 1).
LAUNCHES = {
    "saxpy": (4, 64, 200),
    "saxpy_clamped": (2, 96, 150),
    "strided_sum": (2, 64, 256),
    "block_reduce": (4, 64, 512),
    "divergent_kernel": (2, 64, 100),
}


def _run(kernel_name, backend, block=None, workers=None, instrument=True):
    grid, default_block, n = LAUNCHES[kernel_name]
    block = block or default_block
    module = compile_kernels([KERNELS[kernel_name]], "m")
    optimization_pipeline().run(module)
    if instrument:
        instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession() if instrument else None
    device = Device(KEPLER_K40C)
    device.backend = backend
    device.parallel_workers = workers
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)

    if kernel_name == "divergent_kernel":
        data = (np.arange(n, dtype=np.int32) * 7919) % 101
        out_host = np.zeros(n, dtype=np.int32)
    else:
        data = np.linspace(-3.0, 3.0, n, dtype=np.float32)
        out_host = np.zeros(n, dtype=np.float32)
    d_in = runtime.cuda_malloc(data.nbytes, "in")
    d_out = runtime.cuda_malloc(out_host.nbytes, "out")
    runtime.cuda_memcpy_htod(d_in, data)
    runtime.cuda_memcpy_htod(d_out, out_host)
    if kernel_name in ("saxpy", "saxpy_clamped"):
        args = [d_in, d_out, np.float32(2.5), n]
    else:
        args = [d_in, d_out, n] + ([3] if kernel_name == "strided_sum" else [])
    result = runtime.launch_kernel(image, kernel_name, grid, block, args)
    runtime.cuda_memcpy_dtoh(out_host, d_out)
    profile = session.last_profile if instrument else None
    return result, out_host, profile


def _assert_profiles_identical(pa, pb):
    ma, mb = pa.memory_records, pb.memory_records
    assert len(ma) == len(mb)
    assert np.array_equal(ma.seq, mb.seq)
    assert np.array_equal(ma.addresses, mb.addresses)
    assert np.array_equal(ma.mask, mb.mask)
    for field in ("cta", "warp_in_cta", "bits", "line", "col", "op",
                  "call_path_id"):
        assert np.array_equal(getattr(ma, field), getattr(mb, field))
    assert list(pa.block_records) == list(pb.block_records)
    assert list(pa.arith_records) == list(pb.arith_records)
    assert len(pa.call_paths) == len(pb.call_paths)
    assert all(
        pa.call_paths.path(i) == pb.call_paths.path(i)
        for i in range(len(pa.call_paths))
    )
    assert pa.dropped_records == pb.dropped_records


def _assert_results_identical(la, lb):
    assert la.cycles == lb.cycles
    assert la.instructions == lb.instructions
    assert la.transactions == lb.transactions
    assert la.branches == lb.branches
    assert la.divergent_branches == lb.divergent_branches
    assert la.cache == lb.cache


@pytest.mark.parametrize("kernel_name", sorted(LAUNCHES))
def test_batched_matches_interpreter(kernel_name):
    ra, oa, pa = _run(kernel_name, "interpreter")
    rb, ob, pb = _run(kernel_name, "batched")
    assert np.array_equal(oa, ob)
    _assert_results_identical(ra, rb)
    _assert_profiles_identical(pa, pb)


@pytest.mark.parametrize("kernel_name", ["saxpy", "block_reduce"])
def test_batched_partial_warp(kernel_name):
    """A block of 48 threads leaves warp 1 half-resident."""
    ra, oa, pa = _run(kernel_name, "interpreter", block=48)
    rb, ob, pb = _run(kernel_name, "batched", block=48)
    assert np.array_equal(oa, ob)
    _assert_results_identical(ra, rb)
    _assert_profiles_identical(pa, pb)


def test_batched_uninstrumented_numerics():
    for kernel_name in sorted(LAUNCHES):
        ra, oa, _ = _run(kernel_name, "interpreter", instrument=False)
        rb, ob, _ = _run(kernel_name, "batched", instrument=False)
        assert np.array_equal(oa, ob), kernel_name
        _assert_results_identical(ra, rb)


def test_batched_with_parallel_workers():
    ra, oa, pa = _run("strided_sum", "interpreter")
    rb, ob, pb = _run("strided_sum", "batched", workers=4)
    assert np.array_equal(oa, ob)
    _assert_results_identical(ra, rb)
    _assert_profiles_identical(pa, pb)


def test_unknown_backend_rejected():
    module = compile_kernels([KERNELS["saxpy"]], "m")
    optimization_pipeline().run(module)
    device = Device(KEPLER_K40C)
    device.backend = "warp-speed"
    runtime = CudaRuntime(device)
    image = device.load_module(module)
    d = runtime.cuda_malloc(4 * 32, "d")
    with pytest.raises(LaunchError, match="unknown execution backend"):
        runtime.launch_kernel(
            image, "saxpy", 1, 32, [d, d, np.float32(1.0), 32]
        )


def test_pc_sampling_degrades_batched_with_warning():
    module = compile_kernels([KERNELS["saxpy"]], "m")
    optimization_pipeline().run(module)
    device = Device(KEPLER_K40C)
    device.backend = "batched"
    runtime = CudaRuntime(device)
    image = device.load_module(module)
    d = runtime.cuda_malloc(4 * 64, "d")
    sampler = PCSampler(period=5)
    with pytest.warns(LaunchDegradedWarning, match="pc sampling"):
        device.launch(image, "saxpy", 2, 32, [d, d, np.float32(1.0), 64],
                      pc_sampler=sampler)


def test_pc_sampling_degrades_parallel_with_warning():
    module = compile_kernels([KERNELS["saxpy"]], "m")
    optimization_pipeline().run(module)
    device = Device(KEPLER_K40C)
    device.parallel_workers = 4
    runtime = CudaRuntime(device)
    image = device.load_module(module)
    d = runtime.cuda_malloc(4 * 64, "d")
    sampler = PCSampler(period=5)
    with pytest.warns(LaunchDegradedWarning, match="serially despite"):
        device.launch(image, "saxpy", 2, 32, [d, d, np.float32(1.0), 64],
                      pc_sampler=sampler)


def test_no_warning_on_clean_launches():
    with warnings.catch_warnings():
        warnings.simplefilter("error", LaunchDegradedWarning)
        _run("saxpy", "batched")
        _run("divergent_kernel", "batched")  # de-batch is by design: quiet
