"""Tests for the CUDAAdvisor instrumentation engine passes."""

import numpy as np
import pytest

from repro.frontend import compile_kernels
from repro.gpu import Device, KEPLER_K40C
from repro.ir import print_module, verify_module
from repro.ir.instructions import CacheOp, Call, Load, Store
from repro.ir.types import AddressSpace
from repro.passes import (
    ArithInstrumentationPass,
    BlockInstrumentationPass,
    CallPathInstrumentationPass,
    HorizontalBypassPass,
    MemoryInstrumentationPass,
    PassManager,
    instrumentation_pipeline,
    optimization_pipeline,
)
from repro.errors import PassError
from repro.profiler import HookRuntime, ProfilingSession
from tests.conftest import KERNELS


def _hook_calls(fn, hook_name):
    return [
        i for i in fn.instructions()
        if isinstance(i, Call) and i.callee.name == hook_name
    ]


class TestMemoryInstrumentation:
    def test_one_record_per_global_access(self, fresh_module):
        fn = fresh_module.get_function("saxpy")
        global_accesses = [
            i for i in fn.instructions()
            if isinstance(i, (Load, Store))
            and i.pointer.type.addrspace == AddressSpace.GLOBAL
        ]
        MemoryInstrumentationPass().run(fresh_module)
        verify_module(fresh_module)
        assert len(_hook_calls(fn, "Record")) == len(global_accesses)

    def test_record_immediately_precedes_access(self, fresh_module):
        MemoryInstrumentationPass().run(fresh_module)
        fn = fresh_module.get_function("saxpy")
        for block in fn.blocks:
            for idx, inst in enumerate(block.instructions):
                if (
                    isinstance(inst, (Load, Store))
                    and inst.pointer.type.addrspace == AddressSpace.GLOBAL
                ):
                    prev = block.instructions[idx - 1]
                    assert isinstance(prev, Call)
                    assert prev.callee.name == "Record"

    def test_local_and_shared_not_instrumented(self, fresh_module):
        from repro.ir.instructions import AtomicRMW

        MemoryInstrumentationPass().run(fresh_module)
        fn = fresh_module.get_function("block_reduce")
        # Shared-memory tile and local stack accesses must not be
        # Recorded: only global loads/stores/atomics count.
        global_accesses = [
            i for i in fn.instructions()
            if isinstance(i, (Load, Store, AtomicRMW))
            and i.pointer.type.addrspace == AddressSpace.GLOBAL
        ]
        assert len(_hook_calls(fn, "Record")) == len(global_accesses)

    def test_arguments_carry_debug_info(self, fresh_module):
        MemoryInstrumentationPass().run(fresh_module)
        fn = fresh_module.get_function("saxpy")
        for call in _hook_calls(fn, "Record"):
            _, bits, line, col, op = call.args
            assert bits.value == 32
            assert line.value > 0
            assert op.value in (1, 2, 3)

    def test_listing2_shape(self, fresh_module):
        """The instrumented text contains the Listing 2 pattern:
        bitcast to i8* followed by the Record call."""
        MemoryInstrumentationPass().run(fresh_module)
        text = print_module(fresh_module)
        assert "bitcast float* " in text
        assert "call void @Record(i8* " in text

    def test_executes_and_profiles(self, fresh_module):
        dev = Device(KEPLER_K40C)
        MemoryInstrumentationPass().run(fresh_module)
        img = dev.load_module(fresh_module)
        hooks = HookRuntime(img, "saxpy", (), "test")
        dx = dev.malloc(4 * 64)
        dy = dev.malloc(4 * 64)
        dev.launch(img, "saxpy", 2, 32, [dx, dy, 2.0, 64], hooks=hooks)
        profile = hooks.profile  # launch drives kernel_begin/kernel_end
        # 2 loads + 1 store per warp, 2 warps.
        assert len(profile.memory_records) == 2 * 3
        assert {r.op.value for r in profile.memory_records} == {1, 2}


class TestBlockInstrumentation:
    def test_every_block_instrumented(self, fresh_module):
        BlockInstrumentationPass().run(fresh_module)
        verify_module(fresh_module)
        for fn in fresh_module.functions.values():
            if fn.is_declaration or fn.kind not in ("kernel", "device"):
                continue
            for block in fn.blocks:
                calls = [
                    i for i in block.instructions
                    if isinstance(i, Call) and i.callee.name == "passBasicBlock"
                ]
                assert len(calls) == 1

    def test_block_names_qualified(self, fresh_module):
        BlockInstrumentationPass().run(fresh_module)
        names = {s.text for s in fresh_module.strings.values()}
        assert "saxpy:entry" in names
        assert any(n.startswith("block_reduce:") for n in names)

    def test_instrumentation_after_phis(self, fresh_module):
        from repro.ir.instructions import Phi

        optimization_pipeline().run(fresh_module)
        BlockInstrumentationPass().run(fresh_module)
        verify_module(fresh_module)
        for fn in fresh_module.functions.values():
            for block in fn.blocks:
                seen_call = False
                for inst in block.instructions:
                    if isinstance(inst, Phi):
                        assert not seen_call, "hook inserted before a phi"
                    if isinstance(inst, Call):
                        seen_call = True


class TestArithInstrumentation:
    def test_binops_instrumented(self, fresh_module):
        from repro.ir.instructions import BinOp

        fn = fresh_module.get_function("saxpy")
        n_binops = sum(1 for i in fn.instructions() if isinstance(i, BinOp))
        ArithInstrumentationPass().run(fresh_module)
        verify_module(fresh_module)
        assert len(_hook_calls(fn, "RecordArith")) == n_binops


class TestCallPathInstrumentation:
    def test_push_pop_bracket_calls(self, fresh_module):
        CallPathInstrumentationPass().run(fresh_module)
        verify_module(fresh_module)
        fn = fresh_module.get_function("saxpy_clamped")
        pushes = _hook_calls(fn, "cupr.push")
        pops = _hook_calls(fn, "cupr.pop")
        assert len(pushes) == 1  # the clampf call site
        assert len(pops) == 1
        # Ordering: push ... call ... pop within the block.
        block = pushes[0].parent
        idx = {id(i): n for n, i in enumerate(block.instructions)}
        call = next(
            i for i in block.instructions
            if isinstance(i, Call) and i.callee.name == "clampf"
        )
        assert idx[id(pushes[0])] < idx[id(call)] < idx[id(pops[0])]

    def test_hook_calls_not_instrumented(self, fresh_module):
        MemoryInstrumentationPass().run(fresh_module)
        CallPathInstrumentationPass().run(fresh_module)
        fn = fresh_module.get_function("saxpy")
        assert not _hook_calls(fn, "cupr.push")  # Record isn't bracketed


class TestBypassPass:
    def test_marks_global_accesses_dynamic(self, fresh_module):
        HorizontalBypassPass().run(fresh_module)
        fn = fresh_module.get_function("saxpy")
        for inst in fn.instructions():
            if isinstance(inst, (Load, Store)):
                if inst.pointer.type.addrspace == AddressSpace.GLOBAL:
                    assert inst.cache_op == CacheOp.DYNAMIC
                else:
                    assert inst.cache_op == CacheOp.CACHE_ALL

    def test_threshold_controls_bypass_counts(self, fresh_module):
        HorizontalBypassPass().run(fresh_module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(fresh_module)
        dx = dev.malloc(4 * 256)
        dy = dev.malloc(4 * 256)
        full = dev.launch(img, "saxpy", 1, 256, [dx, dy, 2.0, 256],
                          l1_warps_per_cta=8)
        dev2 = Device(KEPLER_K40C)
        img2 = dev2.load_module(fresh_module)
        dx2 = dev2.malloc(4 * 256)
        dy2 = dev2.malloc(4 * 256)
        half = dev2.launch(img2, "saxpy", 1, 256, [dx2, dy2, 2.0, 256],
                           l1_warps_per_cta=4)
        assert full.cache.bypassed == 0
        assert half.cache.bypassed > 0

    def test_semantics_unchanged(self, fresh_module):
        HorizontalBypassPass().run(fresh_module)
        dev = Device(KEPLER_K40C)
        img = dev.load_module(fresh_module)
        x = np.arange(64, dtype=np.float32)
        dx = dev.malloc(4 * 64)
        dy = dev.malloc(4 * 64)
        dev.memcpy_htod(dx, x)
        dev.memcpy_htod(dy, x)
        dev.launch(img, "saxpy", 2, 32, [dx, dy, 3.0, 64],
                   l1_warps_per_cta=1)
        out = dev.memcpy_dtoh(dy, np.float32, 64)
        assert np.allclose(out, 4 * x)


class TestPipelines:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PassError, match="unknown analysis mode"):
            instrumentation_pipeline(["bogus"])

    def test_modes_compose(self, fresh_module):
        instrumentation_pipeline(["memory", "blocks", "arith"]).run(
            fresh_module
        )
        verify_module(fresh_module)
        fn = fresh_module.get_function("saxpy")
        assert _hook_calls(fn, "Record")
        assert _hook_calls(fn, "passBasicBlock")
        assert _hook_calls(fn, "RecordArith")
