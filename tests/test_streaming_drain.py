"""Streaming out-of-core drain: byte-identity with the in-RAM path.

The streaming drain (``profiler/streamdrain.py`` +
``analysis/aggregates.py``) must reproduce the batch analyzers exactly:

* **Property tests** (hypothesis) drive random interleaved
  memory/block/arith event streams through spilled buffers with tiny
  segment sizes (down to ``segment_rows=1``, always with a partial
  in-memory tail in play) and compare every aggregate of the full plan
  against the batch analyzers over the materialized trace -- including
  stride-sampling phases, keep-first capacity, and shard bank merges.
* **App-level tests** run instrumented programs twice (streaming vs
  in-RAM) across serial / batched / fork-parallel (bank-merge and
  relay) configurations and assert identical analyses + accounting.
* **Chaos** combines ``corrupt_spill`` with the streaming drain: the
  injector corrupts the same segments in both runs, so surviving rows,
  drop accounting and analyses must match.
* Spill-segment files must be deleted *as* they are consumed
  (satellite: the dir shrinks during the drain and is empty after).
"""

import os
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregates import advisor_plan, full_plan
from repro.analysis.arithmetic import arithmetic_analysis
from repro.analysis.cache_model import (
    StackDistanceSummary,
    hit_rate_curve,
    profile_stack_distances,
)
from repro.analysis.divergence_branch import branch_divergence_analysis
from repro.analysis.divergence_memory import (
    divergent_sites,
    memory_divergence_analysis,
)
from repro.analysis.reuse_distance import (
    ReuseDistanceModel,
    reuse_distance_analysis,
    site_reuse_analysis,
)
from repro.apps import build_app
from repro.errors import (
    LaunchDegradedWarning,
    ProfilerError,
    TraceCorruptionError,
)
from repro.frontend.dsl import compile_kernels
from repro.gpu.arch import KEPLER_K40C
from repro.gpu.device import Device
from repro.host.runtime import CudaRuntime
from repro.passes.pipeline import (
    instrumentation_pipeline,
    optimization_pipeline,
)
from repro.profiler.buffers import (
    ColumnarArithBuffer,
    ColumnarBlockBuffer,
    ColumnarMemoryBuffer,
    clip_to_capacity,
    stride_sample,
)
from repro.profiler.session import ProfilingSession
from repro.profiler.streamdrain import StreamDrain, StreamedRecords
from repro.reliability.faultinject import FaultInjector
from repro.reliability.spill import SpillConfig

WARP = 4
LINE_SIZE = 64
CAPACITIES = [4, 16, 64, 256]


# -- synthetic event streams ----------------------------------------------------

#: one event: (stream, cta, selector, flag) -- the selector picks
#: addresses/sites/opcodes, the flag picks write/divergent/is_float.
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["mem", "block", "arith"]),
        st.integers(0, 3),
        st.integers(0, 7),
        st.booleans(),
    ),
    max_size=70,
)


def _append_event(event, seq, mem, block, arith):
    stream, cta, sel, flag = event
    if stream == "mem":
        # Strided addresses so warps touch 1..WARP distinct lines.
        stride = 2 * LINE_SIZE if flag else 8
        addrs = np.arange(WARP, dtype=np.int64) * stride + sel * 16
        mask = (
            np.ones(WARP, bool)
            if sel % 3
            else np.arange(WARP) % 2 == cta % 2
        )
        mem.append(
            seq=seq, cta=cta, warp_in_cta=sel % 2, addrs=addrs, mask=mask,
            bits=32, line=sel % 5, col=sel % 3,
            op=1 if flag else 0, call_path_id=0,
        )
    elif stream == "block":
        block.append(
            seq=seq, cta=cta, warp_in_cta=sel % 2, name=f"b{sel % 4}",
            line=sel, col=0, active_lanes=(2 if flag else WARP),
            resident_lanes=WARP, call_path_id=0,
        )
    else:
        arith.append(
            seq=seq, cta=cta, warp_in_cta=sel % 2, opcode=f"op{sel % 3}",
            bits=32, is_float=flag, line=sel, col=0,
            active_lanes=1 + sel % WARP, call_path_id=0,
        )


def _build_buffers(events, spill=None):
    mem = ColumnarMemoryBuffer(None, spill)
    block = ColumnarBlockBuffer(None, spill)
    arith = ColumnarArithBuffer(None, spill)
    for seq, event in enumerate(events):
        _append_event(event, seq, mem, block, arith)
    return mem, block, arith


def _batch_profile(events):
    """The in-RAM reference: materialized columns from spill-free twins."""
    mem, block, arith = _build_buffers(events)
    return SimpleNamespace(
        memory_records=mem.drain(),
        block_records=block.drain(),
        arith_records=arith.drain(),
    )


def _assert_hist_equal(a, b, what=""):
    assert a.frequencies == b.frequencies, what
    assert (a.samples, a.infinite, a.finite_sum, a.finite_count) == (
        b.samples, b.infinite, b.finite_sum, b.finite_count
    ), what


def _assert_bank_matches_batch(bank, profile):
    """Every full-plan aggregate == its batch analyzer, byte for byte."""
    for name, model in (
        ("reuse_element", ReuseDistanceModel.ELEMENT),
        ("reuse_cache_line", ReuseDistanceModel.CACHE_LINE),
    ):
        _assert_hist_equal(
            reuse_distance_analysis(profile, model, LINE_SIZE),
            bank.result(name),
            name,
        )
        sites = site_reuse_analysis(profile, model, LINE_SIZE)
        streamed = bank.result(f"site_{name}")
        assert list(sites.keys()) == list(streamed.keys())  # dict ORDER too
        for key in sites:
            _assert_hist_equal(sites[key], streamed[key], f"site {key}")
    md = memory_divergence_analysis(profile, LINE_SIZE)
    assert dict(md.counts) == dict(bank.result("memory_divergence").counts)
    assert divergent_sites(profile, LINE_SIZE) == bank.result(
        "divergent_sites"
    )
    bd = branch_divergence_analysis(profile)
    sd = bank.result("branch_divergence")
    assert (bd.total_blocks, bd.divergent_blocks) == (
        sd.total_blocks, sd.divergent_blocks
    )
    assert list(bd.per_block.keys()) == list(sd.per_block.keys())
    for name in bd.per_block:
        a, b = bd.per_block[name], sd.per_block[name]
        assert (a.executions, a.divergent, a.line) == (
            b.executions, b.divergent, b.line
        )
    ar = arithmetic_analysis(profile)
    sr = bank.result("arithmetic")
    assert (ar.lane_flops, ar.lane_intops) == (sr.lane_flops, sr.lane_intops)
    assert dict(ar.by_opcode) == dict(sr.by_opcode)
    assert dict(ar.by_line) == dict(sr.by_line)
    summary = bank.result("stack_distance")
    assert isinstance(summary, StackDistanceSummary)
    batch_curve = hit_rate_curve(
        profile_stack_distances(profile, LINE_SIZE), CAPACITIES, LINE_SIZE
    )
    stream_curve = hit_rate_curve(summary, CAPACITIES, LINE_SIZE)
    assert batch_curve.hit_rates == stream_curve.hit_rates  # float-identical
    assert batch_curve.reads == stream_curve.reads


class TestStreamedAggregatesProperty:
    @settings(max_examples=30, deadline=None)
    @given(events=_EVENTS, segment_rows=st.integers(1, 17))
    def test_full_plan_matches_batch_across_segment_sizes(
        self, tmp_path_factory, events, segment_rows
    ):
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("seg")),
            segment_rows=segment_rows,
        )
        mem, block, arith = _build_buffers(events, spill)
        bank = full_plan(LINE_SIZE).create_bank()
        StreamDrain(bank).feed_buffers(mem, block, arith)
        _assert_bank_matches_batch(bank, _batch_profile(events))

    @settings(max_examples=30, deadline=None)
    @given(
        events=_EVENTS,
        segment_rows=st.integers(1, 13),
        rate=st.sampled_from([2, 3, 5]),
        capacity=st.sampled_from([None, 3, 10]),
    )
    def test_stride_phases_and_capacity_across_segments(
        self, tmp_path_factory, events, segment_rows, rate, capacity
    ):
        spill = SpillConfig(
            directory=str(tmp_path_factory.mktemp("seg")),
            segment_rows=segment_rows,
        )
        mem, block, arith = _build_buffers(events, spill)
        bank = full_plan(LINE_SIZE).create_bank()
        drain = StreamDrain(bank, sample_rate=rate, capacity=capacity)
        drain.feed_buffers(mem, block, arith)

        batch = _batch_profile(events)
        m, a = stride_sample(
            batch.memory_records, batch.arith_records, rate
        )
        clipped = 0
        m, n = clip_to_capacity(m, capacity)
        clipped += n
        a, n = clip_to_capacity(a, capacity)
        clipped += n
        b, n = clip_to_capacity(batch.block_records, capacity)
        clipped += n
        _assert_bank_matches_batch(
            bank,
            SimpleNamespace(
                memory_records=m, block_records=b, arith_records=a
            ),
        )
        assert drain.clipped == clipped
        assert drain.stats.memory_rows == len(m)
        assert drain.stats.arith_rows == len(a)
        assert drain.stats.block_rows == len(b)

    @settings(max_examples=25, deadline=None)
    @given(events=_EVENTS, segment_rows=st.integers(1, 9))
    def test_shard_bank_merge_matches_concatenated_trace(
        self, tmp_path_factory, events, segment_rows
    ):
        # CTAs 0-1 on "shard 0", CTAs 2-3 on "shard 1": each shard
        # streams its own bank (local seqs, like reset_for_shard), the
        # banks merge in shard order, and the result must equal the
        # batch analyzers over the shard-concatenated trace -- exactly
        # what absorb_shards builds in the in-RAM path.
        shards = [
            [e for e in events if e[1] < 2],
            [e for e in events if e[1] >= 2],
        ]
        merged_bank = None
        for shard_events in shards:
            spill = SpillConfig(
                directory=str(tmp_path_factory.mktemp("shard")),
                segment_rows=segment_rows,
            )
            mem, block, arith = _build_buffers(shard_events, spill)
            bank = full_plan(LINE_SIZE).create_bank()
            StreamDrain(bank).feed_buffers(mem, block, arith)
            if merged_bank is None:
                merged_bank = bank
            else:
                merged_bank.merge(bank)
        _assert_bank_matches_batch(
            merged_bank, _batch_profile(shards[0] + shards[1])
        )


# -- app-level equivalence ------------------------------------------------------

APPS = [
    ("bfs", {"num_nodes": 128}),
    ("hotspot", {"n": 32, "steps": 2}),
]


def _session(app, streaming=False, workers=None, backend=None,
             sample_rate=1, capacity=None, spill_dir=None, spill_rows=64,
             configure=None):
    app_name, app_kwargs = app
    program = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(program.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession(
        buffer_capacity=capacity,
        sample_rate=sample_rate,
        spill_dir=spill_dir,
        spill_rows=spill_rows,
        streaming=full_plan(LINE_SIZE) if streaming else None,
    )
    device = Device(KEPLER_K40C)
    if workers is not None:
        device.parallel_workers = workers
    if backend is not None:
        device.backend = backend
    if configure is not None:
        configure(device)
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = program.prepare(runtime)
    program.run(runtime, image, state)
    return session, device


def _assert_sessions_match(in_ram, streaming):
    assert len(in_ram.profiles) == len(streaming.profiles)
    for batch, stream in zip(in_ram.profiles, streaming.profiles):
        assert stream.aggregates is not None
        assert isinstance(stream.memory_records, StreamedRecords)
        assert len(batch.memory_records) == len(stream.memory_records)
        assert len(batch.block_records) == len(stream.block_records)
        assert len(batch.arith_records) == len(stream.arith_records)
        assert batch.dropped_records == stream.dropped_records
        assert batch.corrupt_records == stream.corrupt_records
        _assert_bank_matches_batch(stream.aggregates, batch)


class TestStreamingDrainApps:
    @pytest.mark.parametrize("app", APPS, ids=lambda a: a[0])
    def test_serial_with_spill(self, app, tmp_path):
        in_ram, _ = _session(app, spill_dir=str(tmp_path / "a"))
        streaming, _ = _session(
            app, streaming=True, spill_dir=str(tmp_path / "b")
        )
        _assert_sessions_match(in_ram, streaming)

    @pytest.mark.parametrize("app", APPS, ids=lambda a: a[0])
    def test_fork_parallel_bank_merge(self, app, tmp_path):
        # No sampling/capacity: shard workers ship analyzer banks and
        # the parent merges aggregate-to-aggregate.
        in_ram, _ = _session(
            app, workers=4, spill_dir=str(tmp_path / "a")
        )
        streaming, _ = _session(
            app, streaming=True, workers=4, spill_dir=str(tmp_path / "b")
        )
        _assert_sessions_match(in_ram, streaming)
        assert not os.listdir(tmp_path / "b")

    def test_fork_parallel_relay_sampled(self, tmp_path):
        # Sampling forces relay mode: workers hand over segment files
        # and the parent's running rank must reproduce the global
        # stride phase across shard boundaries.
        app = APPS[0]
        in_ram, _ = _session(
            app, workers=4, sample_rate=3, spill_dir=str(tmp_path / "a")
        )
        streaming, _ = _session(
            app, streaming=True, workers=4, sample_rate=3,
            spill_dir=str(tmp_path / "b"),
        )
        _assert_sessions_match(in_ram, streaming)
        assert not os.listdir(tmp_path / "b")

    def test_fork_parallel_relay_capacity(self, tmp_path):
        app = APPS[1]
        in_ram, _ = _session(
            app, workers=4, capacity=60, spill_dir=str(tmp_path / "a")
        )
        streaming, _ = _session(
            app, streaming=True, workers=4, capacity=60,
            spill_dir=str(tmp_path / "b"),
        )
        _assert_sessions_match(in_ram, streaming)

    def test_batched_backend(self, tmp_path):
        app = APPS[0]
        in_ram, _ = _session(app, backend="batched")
        streaming, _ = _session(
            app, streaming=True, backend="batched",
            spill_dir=str(tmp_path),
        )
        _assert_sessions_match(in_ram, streaming)

    def test_sampled_and_capped_serial(self, tmp_path):
        app = APPS[1]
        in_ram, _ = _session(
            app, sample_rate=2, capacity=40, spill_dir=str(tmp_path / "a"),
            spill_rows=16,
        )
        streaming, _ = _session(
            app, streaming=True, sample_rate=2, capacity=40,
            spill_dir=str(tmp_path / "b"), spill_rows=16,
        )
        _assert_sessions_match(in_ram, streaming)


# -- spill-segment lifecycle ----------------------------------------------------


class TestSpillFileLifecycle:
    def test_segments_discarded_as_consumed(self, tmp_path):
        spill = SpillConfig(directory=str(tmp_path), segment_rows=8)
        mem = ColumnarMemoryBuffer(None, spill)
        for seq in range(50):
            _append_event(("mem", seq % 3, seq % 8, False), seq, mem, None,
                          None)
        on_disk = len(os.listdir(tmp_path))
        assert on_disk >= 6
        counts = []
        for _ in mem.stream_segments():
            counts.append(len(os.listdir(tmp_path)))
        # Each consumed disk segment is unlinked before the next yield:
        # the directory shrinks monotonically and ends empty (the last
        # yield is the in-memory tail).
        assert counts[0] == on_disk - 1
        assert all(b <= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 0
        assert not os.listdir(tmp_path)
        assert len(mem) == 0

    def test_abandoned_stream_discards_remaining(self, tmp_path):
        spill = SpillConfig(directory=str(tmp_path), segment_rows=4)
        mem = ColumnarMemoryBuffer(None, spill)
        for seq in range(30):
            _append_event(("mem", 0, seq % 8, False), seq, mem, None, None)
        it = mem.stream_segments()
        next(it)
        it.close()
        assert not os.listdir(tmp_path)

    def test_streaming_profile_leaves_spill_dir_empty(self, tmp_path):
        _, _ = _session(
            APPS[0], streaming=True, spill_dir=str(tmp_path), spill_rows=32
        )
        assert not os.listdir(tmp_path)


# -- chaos: corrupt segments under streaming ------------------------------------


class TestChaosStreaming:
    def _corrupting(self, device):
        device.fault_injector = (
            FaultInjector()
            .inject("buffer_overflow", segment_rows=128)
            .inject("corrupt_spill", when={"kind": "memory", "segment": 0})
        )

    def test_corrupt_spill_matches_in_ram_accounting(self):
        # The injector fires on (kind, segment ordinal), so both runs
        # corrupt the same segments: surviving rows, per-profile drop /
        # corrupt accounting and every analysis must agree.
        with pytest.warns(LaunchDegradedWarning, match="corrupted spill"):
            in_ram, _ = _session(APPS[1], configure=self._corrupting)
        with pytest.warns(LaunchDegradedWarning, match="corrupted spill"):
            streaming, device = _session(
                APPS[1], streaming=True, configure=self._corrupting
            )
        _assert_sessions_match(in_ram, streaming)
        lost = sum(p.corrupt_records for p in streaming.profiles)
        assert lost > 0
        assert sum(p.dropped_records for p in streaming.profiles) >= lost

    def test_strict_policy_raises_during_streaming(self):
        def configure(device):
            device.failure_policy = "strict"
            self._corrupting(device)

        with pytest.raises(TraceCorruptionError):
            _session(APPS[1], streaming=True, configure=configure)


# -- the placeholder records ----------------------------------------------------


class TestStreamedRecords:
    def test_len_survives_access_raises(self, tmp_path):
        session, _ = _session(
            APPS[0], streaming=True, spill_dir=str(tmp_path)
        )
        profile = session.profiles[0]
        records = profile.memory_records
        assert len(records) > 0
        assert "streamed" in repr(records)
        with pytest.raises(ProfilerError, match="streaming"):
            records[0]
        with pytest.raises(ProfilerError, match="streaming"):
            list(records)
        with pytest.raises(ProfilerError):
            profile.memory_records_by_cta()

    def test_stream_stats_attached(self, tmp_path):
        session, _ = _session(
            APPS[0], streaming=True, spill_dir=str(tmp_path), spill_rows=32
        )
        stats = session.profiles[0].stream_stats
        assert stats["segments_streamed"] >= 3
        total = (
            stats["memory_rows"] + stats["block_rows"] + stats["arith_rows"]
        )
        # O(segment) guarantee: never close to the full trace.
        assert 0 < stats["peak_resident_rows"] < total
