"""Tests for the IR verifier: each structural rule must be enforced."""

import pytest

from repro.errors import VerifierError
from repro.ir import (
    Constant,
    F32,
    I32,
    IRBuilder,
    Module,
    VOID,
    verify_module,
    ptr,
)
from repro.ir.instructions import Br, Call, CmpPred, Phi, Ret


def _fn(ret=VOID, params=((I32, "n"),), kind="kernel"):
    m = Module("m", target="nvptx")
    fn = m.add_function("f", ret, list(params), kind=kind)
    return m, fn


class TestBlockRules:
    def test_valid_module_passes(self):
        m, fn = _fn()
        IRBuilder.at_end(fn.add_block("entry")).ret()
        verify_module(m)

    def test_missing_terminator(self):
        m, fn = _fn()
        b = IRBuilder.at_end(fn.add_block("entry"))
        b.add(b.i32(1), b.i32(2))
        with pytest.raises(VerifierError, match="terminator"):
            verify_module(m)

    def test_empty_block(self):
        m, fn = _fn()
        fn.add_block("entry")
        with pytest.raises(VerifierError, match="empty"):
            verify_module(m)

    def test_midblock_terminator(self):
        m, fn = _fn()
        entry = fn.add_block("entry")
        b = IRBuilder.at_end(entry)
        b.ret()
        # Force a second instruction past the terminator.
        ret2 = Ret(None)
        ret2.parent = entry
        entry.instructions.append(ret2)
        with pytest.raises(VerifierError):
            verify_module(m)

    def test_cross_function_branch(self):
        m, fn = _fn()
        other = m.add_function("g", VOID, [], kind="device")
        other_entry = other.add_block("entry")
        IRBuilder.at_end(other_entry).ret()
        entry = fn.add_block("entry")
        entry.append(Br(other_entry))
        with pytest.raises(VerifierError, match="another function"):
            verify_module(m)


class TestSignatureRules:
    def test_kernel_must_return_void(self):
        m = Module("m", target="nvptx")
        fn = m.add_function("k", I32, [], kind="kernel")
        b = IRBuilder.at_end(fn.add_block("entry"))
        b.ret(b.i32(0))
        with pytest.raises(VerifierError, match="void"):
            verify_module(m)

    def test_ret_type_mismatch(self):
        m, fn = _fn(ret=F32, kind="device")
        b = IRBuilder.at_end(fn.add_block("entry"))
        b.ret(b.i32(0))
        with pytest.raises(VerifierError):
            verify_module(m)

    def test_call_arity_mismatch(self):
        m, fn = _fn()
        hook = m.declare_function("h", VOID, [(I32, "x")], kind="hook")
        entry = fn.add_block("entry")
        bad = Call(hook, [], "")
        bad.parent = entry
        entry.instructions.append(bad)
        IRBuilder.at_end(entry).ret()
        with pytest.raises(VerifierError, match="arity"):
            verify_module(m)


class TestDominance:
    def test_use_before_def_in_block(self):
        m, fn = _fn()
        entry = fn.add_block("entry")
        b = IRBuilder.at_end(entry)
        x = b.add(b.i32(1), b.i32(1), "x")
        y = b.add(x, b.i32(1), "y")
        b.ret()
        # Swap x and y: y now uses x before its definition.
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1],
            entry.instructions[0],
        )
        with pytest.raises(VerifierError, match="before definition"):
            verify_module(m)

    def test_use_from_non_dominating_block(self):
        m, fn = _fn()
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        merge = fn.add_block("merge")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        x = b.add(b.i32(1), b.i32(1), "x")
        b.br(merge)
        IRBuilder.at_end(right).br(merge)
        b.position_at_end(merge)
        b.add(x, b.i32(1), "y")  # x does not dominate merge
        b.ret()
        with pytest.raises(VerifierError, match="dominate"):
            verify_module(m)

    def test_phi_makes_merge_legal(self):
        m, fn = _fn()
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        merge = fn.add_block("merge")
        b = IRBuilder.at_end(entry)
        cond = b.icmp(CmpPred.LT, fn.args[0], b.i32(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        x = b.add(b.i32(1), b.i32(1), "x")
        b.br(merge)
        IRBuilder.at_end(right).br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32, "m")
        phi.add_incoming(x, left)
        phi.add_incoming(Constant(I32, 0), right)
        b.ret()
        verify_module(m)

    def test_phi_arms_must_match_predecessors(self):
        m, fn = _fn()
        entry = fn.add_block("entry")
        merge = fn.add_block("merge")
        IRBuilder.at_end(entry).br(merge)
        phi = Phi(I32, "p")
        phi.parent = merge
        merge.instructions.append(phi)  # no incoming arms at all
        IRBuilder.at_end(merge).ret()
        with pytest.raises(VerifierError, match="predecessors"):
            verify_module(m)
