"""Chaos suite for the launch-reliability layer.

Every rung of the degradation ladder (batched -> fork-parallel ->
serial interpreter) is pinned here under both the ``strict`` and
``degrade`` failure policies, and the fault-injection framework drives
worker crashes, shard hangs, buffer overflow and spill corruption
through real instrumented launches.  The headline property: a
fork-parallel launch completing *through* injected faults produces
traces and statistics byte-identical to a fault-free serial run.
"""

import multiprocessing
import os
import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import (
    LaunchDegradedError,
    LaunchDegradedWarning,
    LaunchError,
    TraceCorruptionError,
)
from repro.frontend import compile_kernels, kernel, ptr_i32
from repro.gpu import Device, KEPLER_K40C
from repro.host import CudaRuntime
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import ProfilingSession
from repro.profiler.pc_sampling import PCSampler
from repro.reliability import (
    FAILURE_POLICIES,
    INJECTION_POINTS,
    REASON_CODES,
    FaultInjector,
    LaunchSupervisor,
    SpillConfig,
)
from repro.reliability import supervisor as sup
from repro.reliability.spill import read_segment, write_segment
from tests.conftest import KERNELS
from tests.test_fastpath_equivalence import (
    _assert_profiles_match,
    _profile_session,
)


@kernel
def chaos_bump(counter: ptr_i32):
    atomic_add(counter, 0, 1)  # noqa: F821 -- DSL intrinsic


#: 4 CTAs on SMs 0..3: with workers=4 the SM shards are [0-2], [3-6],
#: [7-10], [11-14], so shards 0 and 1 both execute real CTAs.
APP = ("hotspot", {"n": 32, "steps": 2})


def _chaos_session(configure=None, app=APP, **session_kwargs):
    """An instrumented app run with arbitrary device configuration."""
    from repro.apps import build_app

    app_name, app_kwargs = app
    program = build_app(app_name, **app_kwargs)
    module = compile_kernels(list(program.kernels), app_name)
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory", "blocks", "arith"]).run(module)
    session = ProfilingSession(**session_kwargs)
    device = Device(KEPLER_K40C)
    if configure is not None:
        configure(device)
    runtime = CudaRuntime(device, profiler=session)
    image = device.load_module(module)
    state = program.prepare(runtime)
    program.run(runtime, image, state)
    return session, device


def _saxpy_launch(configure=None, pc_sampler=None):
    """A bare saxpy launch for ladder-rung tests; returns the device."""
    module = compile_kernels([KERNELS["saxpy"]], "m")
    optimization_pipeline().run(module)
    device = Device(KEPLER_K40C)
    if configure is not None:
        configure(device)
    runtime = CudaRuntime(device)
    image = device.load_module(module)
    d = runtime.cuda_malloc(4 * 64, "d")
    device.launch(image, "saxpy", 2, 32, [d, d, np.float32(1.0), 64],
                  pc_sampler=pc_sampler)
    return device


# -- fault injector unit behaviour ------------------------------------------------


class TestFaultInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultInjector().inject("coffee_spill")

    def test_when_subset_matching(self):
        inj = FaultInjector().inject(
            "worker_crash", when={"shard": 1, "attempt": 0}
        )
        assert inj.fires("worker_crash", shard=1, attempt=0)
        assert not inj.fires("worker_crash", shard=1, attempt=1)
        assert not inj.fires("worker_crash", shard=0, attempt=0)

    def test_count_bounds_fires(self):
        inj = FaultInjector().inject("shard_hang", count=2)
        assert inj.fires("shard_hang", shard=0, attempt=0)
        assert inj.fires("shard_hang", shard=1, attempt=0)
        assert not inj.fires("shard_hang", shard=2, attempt=0)
        assert len(inj.log) == 2

    def test_params_returned(self):
        inj = FaultInjector().inject("buffer_overflow", segment_rows=64)
        assert inj.fire("buffer_overflow", kernel="k") == {"segment_rows": 64}

    def test_probability_is_seed_deterministic(self):
        def verdicts(seed):
            inj = FaultInjector(seed=seed).inject(
                "worker_crash", probability=0.5
            )
            return [
                inj.fires("worker_crash", shard=s, attempt=0)
                for s in range(32)
            ]

        assert verdicts(7) == verdicts(7)  # same seed -> same plan
        assert verdicts(7) != verdicts(8)  # seeds actually matter
        assert any(verdicts(7)) and not all(verdicts(7))

    def test_registry_constants(self):
        assert set(INJECTION_POINTS) == {
            "worker_crash", "shard_hang", "buffer_overflow", "corrupt_spill",
            "service_worker_crash", "service_job_hang", "cache_corrupt_entry",
            "service_pool_loss",
        }
        assert len(REASON_CODES) == len(set(REASON_CODES))
        assert set(FAILURE_POLICIES) == {"strict", "degrade", "best_effort"}


# -- spill segment files --------------------------------------------------------


class TestSpillSegments:
    def test_roundtrip(self, tmp_path):
        config = SpillConfig(directory=str(tmp_path))
        payload = {"a": np.arange(10), "b": ["x", "y"]}
        path = write_segment(config, "memory", 0, payload, rows=10)
        loaded = read_segment(path)
        assert np.array_equal(loaded["a"], payload["a"])
        assert loaded["b"] == payload["b"]

    def test_corruption_detected_with_row_count(self, tmp_path):
        config = SpillConfig(directory=str(tmp_path))
        path = write_segment(config, "arith", 3, {"x": 1}, rows=77)
        with open(path, "r+b") as f:
            f.seek(-1, os.SEEK_END)
            f.write(b"\xff")
        with pytest.raises(TraceCorruptionError) as exc:
            read_segment(path)
        assert exc.value.rows == 77  # clear-text header survives

    def test_truncation_detected(self, tmp_path):
        config = SpillConfig(directory=str(tmp_path))
        path = write_segment(config, "block", 0, {"x": 2}, rows=5)
        with open(path, "r+b") as f:
            f.truncate(8)
        with pytest.raises(TraceCorruptionError):
            read_segment(path)

    def test_corrupt_spill_injection_point(self, tmp_path):
        config = SpillConfig(
            directory=str(tmp_path),
            injector=FaultInjector().inject("corrupt_spill",
                                            when={"segment": 0}),
        )
        bad = write_segment(config, "memory", 0, {"x": 3}, rows=9)
        good = write_segment(config, "memory", 1, {"x": 4}, rows=9)
        with pytest.raises(TraceCorruptionError):
            read_segment(bad)
        assert read_segment(good) == {"x": 4}


# -- the supervisor itself -------------------------------------------------------


class TestSupervisorPolicies:
    def _supervisor(self, policy):
        return LaunchSupervisor(SimpleNamespace(failure_policy=policy))

    def test_strict_raises_with_reason_and_context(self):
        supervisor = self._supervisor("strict")
        with pytest.raises(LaunchDegradedError) as exc:
            supervisor.degrade("shard-timeout", "k", "the message", shard=3)
        assert exc.value.reason == "shard-timeout"
        assert exc.value.context == {"shard": 3, "kernel": "k"}
        assert str(exc.value) == "the message"

    def test_degrade_warns_once_per_reason_and_kernel(self):
        supervisor = self._supervisor("degrade")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                supervisor.degrade("fork-unavailable", "k", "msg")
            supervisor.degrade("fork-unavailable", "other", "msg")
            supervisor.degrade("shard-timeout", "k", "msg")
        assert len(caught) == 3  # (reason, kernel) pairs, not instances
        assert len(supervisor.events) == 7  # every event still recorded
        w = caught[0].message
        assert isinstance(w, LaunchDegradedWarning)
        assert w.reason == "fork-unavailable"
        assert w.context["kernel"] == "k"
        assert str(w) == "msg"

    def test_best_effort_is_silent_but_records(self):
        supervisor = self._supervisor("best_effort")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            supervisor.degrade("shard-worker-crash", "k", "msg", shard=1)
        assert len(supervisor.events_for("shard-worker-crash")) == 1
        assert supervisor.events[0].context["shard"] == 1

    def test_unknown_policy_rejected(self):
        supervisor = self._supervisor("yolo")
        with pytest.raises(LaunchError, match="unknown failure policy"):
            supervisor.degrade("shard-timeout", "k", "msg")


# -- ladder rungs through real launches ----------------------------------------


class TestDegradationLadder:
    def test_pc_sampling_batched_strict_raises(self):
        def configure(device):
            device.backend = "batched"
            device.failure_policy = "strict"

        with pytest.raises(LaunchDegradedError) as exc:
            _saxpy_launch(configure, pc_sampler=PCSampler(period=5))
        assert exc.value.reason == sup.PC_SAMPLING_BATCHED

    def test_pc_sampling_parallel_strict_raises(self):
        def configure(device):
            device.parallel_workers = 4
            device.failure_policy = "strict"

        with pytest.raises(LaunchDegradedError) as exc:
            _saxpy_launch(configure, pc_sampler=PCSampler(period=5))
        assert exc.value.reason == sup.PC_SAMPLING_PARALLEL

    def test_pc_sampling_best_effort_is_silent(self):
        def configure(device):
            device.backend = "batched"
            device.failure_policy = "best_effort"

        with warnings.catch_warnings():
            warnings.simplefilter("error", LaunchDegradedWarning)
            device = _saxpy_launch(configure, pc_sampler=PCSampler(period=5))
        assert device.supervisor.events_for(sup.PC_SAMPLING_BATCHED)

    def test_degrade_warning_carries_reason_code(self):
        def configure(device):
            device.backend = "batched"

        with pytest.warns(LaunchDegradedWarning, match="pc sampling") as rec:
            _saxpy_launch(configure, pc_sampler=PCSampler(period=5))
        degraded = [w.message for w in rec
                    if isinstance(w.message, LaunchDegradedWarning)]
        assert degraded[0].reason == sup.PC_SAMPLING_BATCHED
        assert degraded[0].context["kernel"] == "saxpy"

    def test_degrade_warns_once_across_repeated_launches(self):
        module = compile_kernels([KERNELS["saxpy"]], "m")
        optimization_pipeline().run(module)
        device = Device(KEPLER_K40C)
        device.backend = "batched"
        runtime = CudaRuntime(device)
        image = device.load_module(module)
        d = runtime.cuda_malloc(4 * 64, "d")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                device.launch(image, "saxpy", 2, 32,
                              [d, d, np.float32(1.0), 64],
                              pc_sampler=PCSampler(period=5))
        degraded = [w for w in caught
                    if isinstance(w.message, LaunchDegradedWarning)]
        assert len(degraded) == 1
        assert len(device.supervisor.events) == 3

    def test_fork_unavailable_degrades_not_crashes(self, monkeypatch):
        """Spawn-only platforms run serially with a warning -- never an
        AttributeError from a missing ``os.fork``."""
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods",
            lambda: ["spawn", "forkserver"],
        )
        monkeypatch.delattr(os, "fork")

        def configure(device):
            device.parallel_workers = 4

        with pytest.warns(LaunchDegradedWarning, match="cannot fork"):
            device = _saxpy_launch(configure)
        assert device.supervisor.events_for(sup.FORK_UNAVAILABLE)

    def test_fork_unavailable_strict_raises(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )

        def configure(device):
            device.parallel_workers = 4
            device.failure_policy = "strict"

        with pytest.raises(LaunchDegradedError) as exc:
            _saxpy_launch(configure)
        assert exc.value.reason == sup.FORK_UNAVAILABLE

    def test_write_conflict_strict_raises(self):
        module = compile_kernels([chaos_bump], "conflict")
        optimization_pipeline().run(module)
        device = Device(KEPLER_K40C)
        device.parallel_workers = 4
        device.failure_policy = "strict"
        runtime = CudaRuntime(device)
        image = device.load_module(module)
        d = runtime.cuda_malloc(4, "d")
        runtime.cuda_memcpy_htod(d, np.zeros(1, dtype=np.int32))
        with pytest.raises(LaunchDegradedError) as exc:
            device.launch(image, "chaos_bump", 8, 32, [d])
        assert exc.value.reason == sup.SHARD_WRITE_CONFLICT

    def test_unknown_failure_policy_rejected_at_launch(self):
        def configure(device):
            device.failure_policy = "casual"
            device.parallel_workers = 4

        with pytest.raises(LaunchError, match="unknown failure policy"):
            _saxpy_launch(configure)


# -- shard supervision: crash, hang, retry, serial recovery ---------------------


class TestShardSupervision:
    def test_crashed_worker_retried_byte_identical(self):
        """Shard 0 crashes on its first attempt only; the retry succeeds
        and the trace matches a fault-free serial run exactly."""
        serial = _profile_session(*APP).profiles

        def configure(device):
            device.parallel_workers = 4
            device.fault_injector = FaultInjector().inject(
                "worker_crash", when={"shard": 0, "attempt": 0}
            )

        with warnings.catch_warnings():
            warnings.simplefilter("error", LaunchDegradedWarning)
            session, device = _chaos_session(configure)
        _assert_profiles_match(serial, session.profiles)
        assert not device.supervisor.events  # recovered, never degraded

    def test_permanently_crashed_shard_reexecuted_serially(self):
        serial = _profile_session(*APP).profiles

        def configure(device):
            device.parallel_workers = 4
            device.shard_max_retries = 1
            device.fault_injector = FaultInjector().inject(
                "worker_crash", when={"shard": 1}
            )

        with pytest.warns(LaunchDegradedWarning, match="re-executing"):
            session, device = _chaos_session(configure)
        _assert_profiles_match(serial, session.profiles)
        events = device.supervisor.events_for(sup.SHARD_WORKER_CRASH)
        assert events and all(e.context["shard"] == 1 for e in events)

    def test_hung_shard_reaped_and_recovered(self):
        serial = _profile_session(*APP).profiles

        def configure(device):
            device.parallel_workers = 4
            device.shard_timeout = 0.4
            device.shard_retry_backoff = 0.01
            device.fault_injector = FaultInjector().inject(
                "shard_hang", when={"shard": 1, "attempt": 0}
            )

        with warnings.catch_warnings():
            warnings.simplefilter("error", LaunchDegradedWarning)
            session, _ = _chaos_session(configure)
        _assert_profiles_match(serial, session.profiles)

    def test_permanently_hung_shard_reexecuted_serially(self):
        serial = _profile_session(*APP).profiles

        def configure(device):
            device.parallel_workers = 4
            device.shard_timeout = 0.4
            device.shard_max_retries = 0
            device.fault_injector = FaultInjector().inject(
                "shard_hang", when={"shard": 1}
            )

        with pytest.warns(LaunchDegradedWarning, match="timeout"):
            session, device = _chaos_session(configure)
        _assert_profiles_match(serial, session.profiles)
        assert device.supervisor.events_for(sup.SHARD_TIMEOUT)

    def test_strict_crash_raises_without_retry(self):
        def configure(device):
            device.parallel_workers = 4
            device.failure_policy = "strict"
            device.fault_injector = FaultInjector().inject(
                "worker_crash", when={"shard": 0}
            )

        with pytest.raises(LaunchDegradedError) as exc:
            _chaos_session(configure)
        assert exc.value.reason == sup.SHARD_WORKER_CRASH
        assert exc.value.context["attempts"] == 1  # strict never retries


# -- buffer overflow spill and corrupt segments ---------------------------------


class TestBufferFaults:
    def test_overflow_injection_spills_losslessly(self):
        serial = _profile_session(*APP).profiles

        def configure(device):
            device.fault_injector = FaultInjector().inject(
                "buffer_overflow", segment_rows=128
            )

        session, _ = _chaos_session(configure)
        _assert_profiles_match(serial, session.profiles)  # spill is lossless
        assert sum(p.spilled_records for p in session.profiles) > 0
        assert all(p.corrupt_records == 0 for p in session.profiles)

    def test_corrupt_segment_dropped_with_accounting(self):
        def configure(device):
            device.fault_injector = (
                FaultInjector()
                .inject("buffer_overflow", segment_rows=128)
                .inject("corrupt_spill", when={"kind": "memory",
                                               "segment": 0})
            )

        with pytest.warns(LaunchDegradedWarning, match="corrupted spill"):
            session, device = _chaos_session(configure)
        lost = sum(p.corrupt_records for p in session.profiles)
        assert lost > 0
        assert any(
            p.dropped_records >= p.corrupt_records > 0
            for p in session.profiles
        )
        assert device.supervisor.events_for(sup.TRACE_SEGMENT_CORRUPT)

    def test_corrupt_segment_strict_raises(self):
        def configure(device):
            device.failure_policy = "strict"
            device.fault_injector = (
                FaultInjector()
                .inject("buffer_overflow", segment_rows=128)
                .inject("corrupt_spill", when={"kind": "memory",
                                               "segment": 0})
            )

        with pytest.raises(TraceCorruptionError):
            _chaos_session(configure)


# -- the headline acceptance property -------------------------------------------


def test_chaos_parallel_launch_byte_identical_to_clean_serial():
    """Crash + hang + forced overflow together: the supervised parallel
    launch must still complete with traces, call paths, statistics and
    memory byte-identical to a fault-free serial interpreter run."""
    serial = _profile_session(*APP).profiles

    def configure(device):
        device.parallel_workers = 4
        device.shard_timeout = 0.4
        device.shard_retry_backoff = 0.01
        device.fault_injector = (
            FaultInjector(seed=42)
            .inject("worker_crash", when={"shard": 0, "attempt": 0})
            .inject("shard_hang", when={"shard": 1, "attempt": 0})
            .inject("buffer_overflow", segment_rows=256)
        )

    session, device = _chaos_session(configure)
    _assert_profiles_match(serial, session.profiles)
    assert not device.supervisor.events  # every fault recovered by retry
