"""Tests for the SIMT engine: divergence, reconvergence, barriers,
partial warps, atomics, launch plumbing and failure modes."""

import numpy as np
import pytest

from repro.errors import ExecutionError, LaunchError
from repro.frontend import (
    compile_kernels,
    device,
    f32,
    i32,
    kernel,
    ptr_f32,
    ptr_i32,
)
from repro.gpu import Device, KEPLER_K40C, PASCAL_P100
from repro.passes import optimization_pipeline
from tests.conftest import KERNELS


def _run(k, grid, block, builders, optimize=False, arch=KEPLER_K40C):
    module = compile_kernels([k], k.name)
    if optimize:
        optimization_pipeline().run(module)
    dev = Device(arch)
    img = dev.load_module(module)
    args = builders(dev)
    result = dev.launch(img, k.name, grid, block, args)
    return dev, args, result


@kernel
def k_divergent_sum(out: ptr_i32, n: i32):
    t = ctaid_x * ntid_x + tid_x
    v = 0
    if t % 2 == 0:
        v = t * 10
    else:
        if t % 3 == 0:
            v = t * 100
        else:
            v = t
    out[t] = v


class TestDivergence:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_nested_divergence_results(self, optimize):
        def build(dev):
            return [dev.malloc(4 * 64), 64]

        dev, args, result = _run(k_divergent_sum, 2, 32, build,
                                 optimize=optimize)
        out = dev.memcpy_dtoh(args[0], np.int32, 64)
        expected = [
            t * 10 if t % 2 == 0 else (t * 100 if t % 3 == 0 else t)
            for t in range(64)
        ]
        assert list(out) == expected

    def test_divergent_branches_counted(self):
        def build(dev):
            return [dev.malloc(4 * 64), 64]

        _, _, result = _run(k_divergent_sum, 2, 32, build)
        assert result.divergent_branches > 0
        assert result.branches >= result.divergent_branches

    def test_uniform_kernel_has_no_divergence(self):
        module = compile_kernels([KERNELS["saxpy"]], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        dx = dev.malloc(4 * 64)
        dy = dev.malloc(4 * 64)
        # n == total threads: the bounds check never splits a warp.
        result = dev.launch(img, "saxpy", 2, 32, [dx, dy, 1.0, 64])
        assert result.divergent_branches == 0


@kernel
def k_loop_divergence(out: ptr_i32):
    t = tid_x
    acc = 0
    i = 0
    while i < t % 5:
        acc += 10
        i += 1
    out[t] = acc


class TestLoopDivergence:
    def test_data_dependent_trip_counts(self):
        def build(dev):
            return [dev.malloc(4 * 32)]

        dev, args, _ = _run(k_loop_divergence, 1, 32, build)
        out = dev.memcpy_dtoh(args[0], np.int32, 32)
        assert list(out) == [(t % 5) * 10 for t in range(32)]


@kernel
def k_early_return(out: ptr_i32, n: i32):
    t = tid_x
    if t >= n:
        return
    out[t] = t + 1


class TestReturns:
    def test_divergent_early_return(self):
        def build(dev):
            return [dev.malloc(4 * 32), 10]

        dev, args, _ = _run(k_early_return, 1, 32, build)
        out = dev.memcpy_dtoh(args[0], np.int32, 32)
        assert list(out[:10]) == list(range(1, 11))
        assert list(out[10:]) == [0] * 22


@device
def collatz_len(x0: i32) -> i32:
    x = x0
    steps = 0
    while x != 1:
        if x % 2 == 0:
            x = x // 2
        else:
            x = 3 * x + 1
        steps += 1
    return steps


@kernel
def k_device_divergent(out: ptr_i32):
    t = tid_x
    out[t] = collatz_len(t + 1)


class TestDeviceCalls:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_divergent_call_with_returns(self, optimize):
        def build(dev):
            return [dev.malloc(4 * 32)]

        dev, args, _ = _run(k_device_divergent, 1, 32, build,
                            optimize=optimize)
        out = dev.memcpy_dtoh(args[0], np.int32, 32)

        def ref(n):
            steps = 0
            while n != 1:
                n = n // 2 if n % 2 == 0 else 3 * n + 1
                steps += 1
            return steps

        assert list(out) == [ref(t + 1) for t in range(32)]


class TestBarriers:
    def test_shared_reduction(self):
        module = compile_kernels([KERNELS["block_reduce"]], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        n = 256
        data = np.arange(n, dtype=np.float32)
        dx = dev.malloc(data.nbytes)
        do = dev.malloc(4)
        dev.memcpy_htod(dx, data)
        dev.memcpy_htod(do, np.zeros(1, dtype=np.float32))
        dev.launch(img, "block_reduce", 4, 64, [dx, do, n])
        total = dev.memcpy_dtoh(do, np.float32, 1)[0]
        assert total == pytest.approx(data.sum())

    def test_divergent_barrier_rejected(self):
        @kernel
        def bad_barrier(out: ptr_i32):
            t = tid_x
            if t < 16:
                syncthreads()
            out[t] = t

        module = compile_kernels([bad_barrier], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        do = dev.malloc(4 * 32)
        with pytest.raises(ExecutionError, match="divergent"):
            dev.launch(img, "bad_barrier", 1, 32, [do])


class TestPartialWarps:
    def test_block_smaller_than_warp(self):
        def build(dev):
            return [dev.malloc(4 * 32), 100]

        dev, args, result = _run(k_early_return, 1, 16, build)
        out = dev.memcpy_dtoh(args[0], np.int32, 16)
        assert list(out) == list(range(1, 17))
        assert result.warps_per_cta == 1

    def test_2d_blocks(self):
        @kernel
        def k2d(out: ptr_i32, w: i32):
            x = ctaid_x * ntid_x + tid_x
            y = ctaid_y * ntid_y + tid_y
            out[y * w + x] = x + 100 * y

        module = compile_kernels([k2d], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        do = dev.malloc(4 * 16 * 16)
        dev.launch(img, "k2d", (2, 2), (8, 8), [do, 16])
        out = dev.memcpy_dtoh(do, np.int32, 256).reshape(16, 16)
        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        assert np.array_equal(out, xs + 100 * ys)


class TestAtomics:
    def test_atomic_add_no_lost_updates(self):
        @kernel
        def bump(counter: ptr_i32):
            atomic_add(counter, 0, 1)

        module = compile_kernels([bump], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        dc = dev.malloc(4)
        dev.memcpy_htod(dc, np.zeros(1, dtype=np.int32))
        dev.launch(img, "bump", 4, 64, [dc])
        assert dev.memcpy_dtoh(dc, np.int32, 1)[0] == 256

    def test_atomic_returns_old_value(self):
        @kernel
        def claim(counter: ptr_i32, slots: ptr_i32):
            t = ctaid_x * ntid_x + tid_x
            old = atomic_add(counter, 0, 1)
            slots[t] = old

        module = compile_kernels([claim], "m")
        dev = Device(KEPLER_K40C)
        img = dev.load_module(module)
        dc = dev.malloc(4)
        ds = dev.malloc(4 * 64)
        dev.memcpy_htod(dc, np.zeros(1, dtype=np.int32))
        dev.launch(img, "claim", 2, 32, [dc, ds])
        out = dev.memcpy_dtoh(ds, np.int32, 64)
        assert sorted(out) == list(range(64))  # unique tickets


class TestLaunchValidation:
    def test_wrong_arity(self, fresh_module, kepler_device):
        img = kepler_device.load_module(fresh_module)
        with pytest.raises(LaunchError, match="arguments"):
            kepler_device.launch(img, "saxpy", 1, 32, [1, 2])

    def test_non_kernel_rejected(self, fresh_module, kepler_device):
        img = kepler_device.load_module(fresh_module)
        with pytest.raises(LaunchError, match="not a kernel"):
            kepler_device.launch(img, "clampf", 1, 32, [1.0, 2.0, 3.0])

    def test_pointer_arg_type_checked(self, fresh_module, kepler_device):
        img = kepler_device.load_module(fresh_module)
        with pytest.raises(LaunchError, match="device pointer"):
            kepler_device.launch(
                img, "saxpy", 1, 32, [1.5, kepler_device.malloc(128), 1.0, 8]
            )

    def test_oversized_block_rejected(self, fresh_module, kepler_device):
        img = kepler_device.load_module(fresh_module)
        dx = kepler_device.malloc(4096)
        with pytest.raises(LaunchError, match="too large"):
            kepler_device.launch(img, "saxpy", 1, 2048, [dx, dx, 1.0, 8])

    def test_infinite_loop_detected(self):
        @kernel
        def spin(out: ptr_i32):
            x = 1
            while x > 0:
                x = 2
            out[0] = x

        module = compile_kernels([spin], "m")
        dev = Device(KEPLER_K40C)
        dev.max_steps = 10_000
        img = dev.load_module(module)
        with pytest.raises(ExecutionError, match="step budget"):
            dev.launch(img, "spin", 1, 32, [dev.malloc(4)])


class TestSchedulers:
    @pytest.mark.parametrize("policy", ["rr", "gto"])
    def test_policies_agree_on_results(self, policy):
        module = compile_kernels([KERNELS["divergent_kernel"]], "m")
        dev = Device(KEPLER_K40C)
        dev.scheduler = policy
        img = dev.load_module(module)
        data = np.arange(64, dtype=np.int32)
        di = dev.malloc(data.nbytes)
        do = dev.malloc(data.nbytes)
        dev.memcpy_htod(di, data)
        dev.launch(img, "divergent_kernel", 2, 32, [di, do, 64])
        out = dev.memcpy_dtoh(do, np.int32, 64)
        expected = []
        for v in data:
            r = v * 3 if v % 2 == 0 else v - 7
            r += sum(range(v % 4))
            expected.append(r)
        assert list(out) == expected


class TestArchitectures:
    def test_pascal_line_size_changes_transactions(self):
        module = compile_kernels([KERNELS["saxpy"]], "m")
        results = {}
        for arch in (KEPLER_K40C, PASCAL_P100):
            dev = Device(arch)
            img = dev.load_module(module)
            dx = dev.malloc(4 * 256)
            dy = dev.malloc(4 * 256)
            results[arch.name] = dev.launch(
                img, "saxpy", 4, 64, [dx, dy, 2.0, 256]
            )
        # 32B lines split each 128B warp access into 4 transactions.
        assert results["Pascal"].transactions > results["Kepler"].transactions
