"""Cache-bypassing case study: the paper's optimization (D) end to end.

Profiles syrk with CUDAAdvisor, evaluates the Eq.(1) model against the
exhaustive oracle of Li et al. on a scaled Kepler (see
benchmarks/common.py for the scaling rationale), and prints the
Figure 6-style comparison: baseline vs oracle vs prediction.

Run:  python examples/cache_bypassing_advisor.py      (takes ~2 min)
"""

import dataclasses

from repro import CUDAAdvisor, kepler_with_l1
from repro.apps import build_app
from repro.gpu.device import Device
from repro.gpu.timing import TimingParams
from repro.host.runtime import CudaRuntime


def scaled_kepler(l1_bytes: int):
    """2 SMs + L1 scaled 1/4, matching the scaled benchmark inputs."""
    return dataclasses.replace(
        kepler_with_l1(16), num_sms=2, l1_size=l1_bytes, mshr_entries=16
    )


def evaluate(app_name: str, l1_bytes: int) -> None:
    arch = scaled_kepler(l1_bytes)
    advisor = CUDAAdvisor(arch=arch, modes=("memory",),
                          measure_overhead=False)
    timing = TimingParams(mshr_fail_stall=60)

    def fresh(profiler=None):
        return CudaRuntime(Device(arch, timing_params=timing),
                           profiler=profiler)

    advisor._fresh_runtime = fresh

    app = build_app(app_name)
    report = advisor.profile(app)
    prediction = report.bypass_prediction
    print(f"--- {app_name} on Kepler with {l1_bytes // 1024} KB L1 "
          f"(scaled) ---")
    print(f"measured avg cache-line R.D. = "
          f"{prediction.avg_reuse_distance:.1f}, "
          f"M.D. degree = {prediction.divergence_degree:.2f}, "
          f"CTAs/SM = {prediction.ctas_per_sm}")
    print(f"Eq.(1): Opt_Num_Warps = floor({prediction.raw_value:.3f}) "
          f"-> {prediction.optimal_warps} of {prediction.warps_per_cta} "
          f"warps should use L1")

    search, prediction = advisor.evaluate_bypass(app, prediction)
    print(f"exhaustive search (cycles per k): "
          f"{ {k: round(v) for k, v in search.cycles_by_warps.items()} }")
    print(f"baseline (no bypass):   1.000")
    print(f"oracle   (k={search.best_warps}):         "
          f"{search.oracle_normalized:.3f}  "
          f"({search.oracle_speedup:.2f}x speedup)")
    pred_norm = search.normalized(prediction.optimal_warps)
    print(f"predicted (k={prediction.optimal_warps}):        "
          f"{pred_norm:.3f}  "
          f"({100 * (pred_norm - search.oracle_normalized):.1f} pp from "
          f"the oracle)")
    print()


def main():
    for l1 in (4096, 12288):  # 16 KB and 48 KB Kepler configs, scaled 1/4
        evaluate("syrk", l1)
    print("Note how the bypassing benefit at the small L1 disappears at "
          "the large one -- the paper's 16KB->48KB observation.")


if __name__ == "__main__":
    main()
