"""PC sampling vs fine-grained instrumentation.

The paper's introduction argues that hardware PC sampling (Maxwell+,
CUPTI) "only provides sparse instruction-level insights" while
CUDAAdvisor's instrumentation observes every monitored instruction.
This example makes that comparison concrete on srad_v2: the same launch
is profiled both ways, and the sampled picture is compared against the
exhaustive one at several sampling periods.

Run:  python examples/pc_sampling_vs_instrumentation.py
"""

import numpy as np

from repro import CudaRuntime, Device, KEPLER_K40C
from repro.apps import build_app
from repro.frontend.dsl import compile_kernels
from repro.passes import instrumentation_pipeline, optimization_pipeline
from repro.profiler import (
    PCSampler,
    ProfilingSession,
    coverage_vs_instrumentation,
)


def main():
    app = build_app("srad_v2", n=64, iterations=1)
    module = compile_kernels(list(app.kernels), "srad")
    optimization_pipeline().run(module)
    instrumentation_pipeline(["memory"]).run(module)

    print(f"{'period':>7} {'samples':>8} {'sampled sites':>14} "
          f"{'line coverage':>14}")
    for period in (512, 128, 32, 8, 1):
        session = ProfilingSession()
        dev = Device(KEPLER_K40C)
        rt = CudaRuntime(dev, profiler=session)
        image = dev.load_module(module)
        sampler = PCSampler(period=period)

        # Route the sampler through each launch of the app's host loop.
        def launch(image_, kernel, grid, block, args, **kw):
            hooks = session.hook_runtime_for_launch(
                image_, kernel, (), "example"
            )
            return dev.launch(image_, kernel, grid, block, args,
                              hooks=hooks, pc_sampler=sampler)

        rt.launch_kernel = launch
        state = app.prepare(rt)
        app.run(rt, image, state)
        assert app.check(rt, state)

        profile = session.profiles[0]
        stats = coverage_vs_instrumentation(sampler.profile, profile)
        print(f"{period:>7} {sampler.profile.total_samples:>8} "
              f"{int(stats['sampled_sites']):>14} "
              f"{100 * stats['line_coverage']:>13.1f}%")

    print()
    print("Instrumentation attributes an event to every access site at "
          "any overhead budget;")
    print("PC sampling only approaches that picture as its period "
          "approaches 1.")


if __name__ == "__main__":
    main()
