"""Code- and data-centric debugging (case study E, Figures 8-9).

Runs the bfs benchmark under full profiling, finds the memory accesses
with the worst divergence, and prints:

* the **code-centric view**: the concatenated CPU->GPU calling context
  from main() down to the offending instruction (Figure 8);
* the **data-centric view**: which device object the access touches,
  which cudaMemcpy filled it, and which host object it came from
  (Figure 9 -- the paper's d_graph_visited <- h_graph_visited chain).

Run:  python examples/debugging_views.py
"""

from repro import CUDAAdvisor, KEPLER_K40C
from repro.analysis.divergence_memory import divergent_sites
from repro.apps import build_app
from repro.profiler.codecentric import format_code_centric_view


def main():
    advisor = CUDAAdvisor(arch=KEPLER_K40C, modes=("memory", "blocks"),
                          measure_overhead=False)
    report = advisor.profile(build_app("bfs", num_nodes=1024))
    session = report.session

    # Rank source locations by divergent warp events across all kernel
    # instances of the BFS sweep.
    totals = {}
    samples = {}
    for profile in session.profiles:
        for site, count in divergent_sites(profile, 128).items():
            totals[site] = totals.get(site, 0) + count
            if site not in samples:
                samples[site] = (
                    profile,
                    next(r for r in profile.memory_records
                         if (r.line, r.col) == site),
                )

    print("divergent memory accesses (by source line):")
    for (line, col), count in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  bfs.py:{line}:{col} -- {count} divergent warp accesses")
    print()

    worst = max(totals, key=totals.get)
    profile, record = samples[worst]

    print("=" * 70)
    print("Code-centric view (Figure 8): calling context of the worst site")
    print("=" * 70)
    print(format_code_centric_view(
        profile.host_call_path,
        profile.call_paths.path(record.call_path_id),
        profile.functions_by_id,
        f"bfs.py: {record.line} (memory divergence)",
    ))
    print()

    print("=" * 70)
    print("Data-centric view (Figure 9): which data object is responsible")
    print("=" * 70)
    view = session.data_centric_map().resolve(
        int(record.active_addresses()[0])
    )
    print(view.render())


if __name__ == "__main__":
    main()
