"""Quickstart: write a kernel, profile it with CUDAAdvisor, read advice.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CUDAAdvisor, CudaRuntime, GPUProgram, KEPLER_K40C
from repro.analysis.report import (
    render_divergence_distribution,
    render_reuse_histogram,
)
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host import host_function

N = 4096
STRIDE = 33  # deliberately cache-hostile


@kernel
def strided_scale(x: ptr_f32, y: ptr_f32, a: f32, n: i32, stride: i32):
    """y[i] = a * x[(i * stride) % n] -- a strided gather that diverges."""
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        y[gid] = a * x[(gid * stride) % n]


class StridedScale(GPUProgram):
    """The GPUProgram protocol: kernels + host-side driver code."""

    name = "strided_scale"
    kernels = (strided_scale,)
    warps_per_cta = 8  # 256-thread CTAs

    @host_function
    def prepare(self, rt: CudaRuntime):
        x = np.arange(N, dtype=np.float32)
        h_x = rt.host_wrap(x, "h_x")
        d_x = rt.cuda_malloc(x.nbytes, "d_x")
        d_y = rt.cuda_malloc(x.nbytes, "d_y")
        rt.cuda_memcpy_htod(d_x, h_x)
        return {"x": x, "d_x": d_x, "d_y": d_y}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        result = rt.launch_kernel(
            image, "strided_scale", grid=N // 256, block=256,
            args=[state["d_x"], state["d_y"], 2.0, N, STRIDE],
            l1_warps_per_cta=l1_warps_per_cta,
        )
        return [result]

    def check(self, rt, state) -> bool:
        out = rt.device.memcpy_dtoh(state["d_y"], np.float32, N)
        expected = 2.0 * state["x"][(np.arange(N) * STRIDE) % N]
        return bool(np.allclose(out, expected))


def main():
    advisor = CUDAAdvisor(arch=KEPLER_K40C, modes=("memory", "blocks"))
    report = advisor.profile(StridedScale())

    print("=" * 70)
    print(render_reuse_histogram("strided_scale", report.reuse_element))
    print()
    print(render_divergence_distribution(
        "strided_scale", report.memory_divergence
    ))
    print()
    bd = report.branch_divergence
    print(f"branch divergence: {bd.divergent_blocks}/{bd.total_blocks} "
          f"dynamic blocks ({bd.divergence_percent:.1f}%)")
    print(f"instrumentation overhead: "
          f"{report.overhead.cycle_overhead:.1f}x cycles")
    print()
    print("CUDAAdvisor says:")
    for tip in report.advice():
        print(f"  * {tip}")


if __name__ == "__main__":
    main()
