"""Memory-divergence case study: diagnosing and fixing an AoS layout.

The scenario from the paper's case study (B): a particle-update kernel
reads interleaved array-of-structures data, so each warp access touches
many cache lines. CUDAAdvisor's divergence distribution pinpoints the
problem and the exact source line; switching to structure-of-arrays
coalesces the accesses. Both Kepler (128 B lines) and Pascal (32 B
sectors) views are shown, like Figure 5(a)/(b).

Run:  python examples/memory_divergence_tour.py
"""

import numpy as np

from repro import CUDAAdvisor, KEPLER_K40C, PASCAL_P100, GPUProgram
from repro.analysis.divergence_memory import (
    divergent_sites,
    memory_divergence_analysis,
)
from repro.analysis.report import render_divergence_distribution
from repro.frontend import f32, i32, kernel, ptr_f32
from repro.host import host_function

N = 2048
FIELDS = 8  # one "struct" = 8 floats


@kernel
def update_aos(particles: ptr_f32, out: ptr_f32, n: i32, dt: f32):
    """Array-of-structures: field 0 of record i lives at i*8 -- every
    warp load spans 8x more cache lines than necessary."""
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        x = particles[gid * 8 + 0]
        v = particles[gid * 8 + 1]
        out[gid] = x + v * dt


@kernel
def update_soa(xs: ptr_f32, vs: ptr_f32, out: ptr_f32, n: i32, dt: f32):
    """Structure-of-arrays: consecutive threads read consecutive words."""
    gid = ctaid_x * ntid_x + tid_x
    if gid < n:
        out[gid] = xs[gid] + vs[gid] * dt


class _Base(GPUProgram):
    warps_per_cta = 8

    def check(self, rt, state) -> bool:
        out = rt.device.memcpy_dtoh(state["d_out"], np.float32, N)
        return bool(np.allclose(out, state["expected"], rtol=1e-5))


class AoSProgram(_Base):
    name = "particles_aos"
    kernels = (update_aos,)

    @host_function
    def prepare(self, rt):
        data = np.random.default_rng(5).random(
            N * FIELDS, dtype=np.float32
        )
        h = rt.host_wrap(data, "h_particles")
        d = rt.cuda_malloc(data.nbytes, "d_particles")
        d_out = rt.cuda_malloc(4 * N, "d_out")
        rt.cuda_memcpy_htod(d, h)
        expected = data[0::8] + data[1::8] * np.float32(0.5)
        return {"d_particles": d, "d_out": d_out, "expected": expected}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        return [rt.launch_kernel(
            image, "update_aos", grid=N // 256, block=256,
            args=[state["d_particles"], state["d_out"], N, 0.5],
        )]


class SoAProgram(_Base):
    name = "particles_soa"
    kernels = (update_soa,)

    @host_function
    def prepare(self, rt):
        rng = np.random.default_rng(5)
        data = rng.random(N * FIELDS, dtype=np.float32)
        xs, vs = data[0::8].copy(), data[1::8].copy()
        h_xs = rt.host_wrap(xs, "h_xs")
        h_vs = rt.host_wrap(vs, "h_vs")
        d_xs = rt.cuda_malloc(xs.nbytes, "d_xs")
        d_vs = rt.cuda_malloc(vs.nbytes, "d_vs")
        d_out = rt.cuda_malloc(4 * N, "d_out")
        rt.cuda_memcpy_htod(d_xs, h_xs)
        rt.cuda_memcpy_htod(d_vs, h_vs)
        expected = xs + vs * np.float32(0.5)
        return {"d_xs": d_xs, "d_vs": d_vs, "d_out": d_out,
                "expected": expected}

    @host_function
    def run(self, rt, image, state, l1_warps_per_cta=None):
        return [rt.launch_kernel(
            image, "update_soa", grid=N // 256, block=256,
            args=[state["d_xs"], state["d_vs"], state["d_out"], N, 0.5],
        )]


def main():
    for arch in (KEPLER_K40C, PASCAL_P100):
        print("=" * 70)
        print(f"{arch.name} ({arch.l1_line_size}-byte cache lines)")
        print("=" * 70)
        for program in (AoSProgram(), SoAProgram()):
            advisor = CUDAAdvisor(arch=arch, modes=("memory",),
                                  measure_overhead=False)
            report = advisor.profile(program)
            print(render_divergence_distribution(
                program.name, report.memory_divergence
            ))
            profile = report.session.profiles[0]
            sites = divergent_sites(profile, arch.l1_line_size, threshold=3)
            if sites:
                worst = max(sites, key=sites.get)
                print(f"  -> most divergent access at "
                      f"{__file__.rsplit('/', 1)[-1]}:{worst[0]} "
                      f"({sites[worst]} warp events)")
            print()
    print("Fix: the SoA layout collapses the distribution to 1 line per "
          "warp access on Kepler.")


if __name__ == "__main__":
    main()
